// Transformation framework.
//
// A transformation matches program patterns and applies a structural rewrite
// (Sec. 2).  Transformations here are *white-box* (Sec. 3, step 2): apply()
// returns the ChangeSet ΔT of graph nodes it touched, so change isolation
// needs no graph diff.  (A black-box diff fallback lives in core/changeset.)
//
// Every pass in this library has a correct mode and, where the paper's
// evaluation calls for it, an injectable bug variant reproducing one of the
// failure classes of Table 2 / Sec. 6.4.  Bug selection is explicit at
// construction; correct-mode passes are property-tested to preserve
// semantics.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ir/sdfg.h"

namespace ff::xform {

/// A (state, node) pair identifying a dataflow node inside an SDFG.
struct NodeRef {
    ir::StateId state = graph::kInvalidNode;
    ir::NodeId node = graph::kInvalidNode;

    auto operator<=>(const NodeRef&) const = default;
};

/// The set of changes a transformation made (ΔT in Sec. 3).
struct ChangeSet {
    /// Modified / added dataflow nodes.  Nodes incident to changed edges are
    /// included per the paper ("both the edge source and destination nodes
    /// are considered to be modified").
    std::set<NodeRef> nodes;
    /// States whose interstate context changed (conditions/assignments);
    /// cutout extraction promotes these to whole-state granularity.
    std::set<ir::StateId> control_flow_states;

    bool touches_control_flow() const { return !control_flow_states.empty(); }

    void add(ir::StateId state, ir::NodeId node) { nodes.insert(NodeRef{state, node}); }
    void merge(const ChangeSet& other);
};

/// One applicable instance of a transformation.
struct Match {
    ir::StateId state = graph::kInvalidNode;
    std::vector<ir::NodeId> nodes;     ///< Pattern nodes (pass-specific meaning).
    graph::EdgeId cfg_edge = -1;       ///< For interstate-level patterns.
    std::string description;
};

class Transformation {
public:
    virtual ~Transformation() = default;

    virtual std::string name() const = 0;

    /// All applicable instances in `sdfg`, deterministic order.  All
    /// preconditions live here; apply() rewrites unconditionally.
    virtual std::vector<Match> find_matches(const ir::SDFG& sdfg) const = 0;

    /// White-box self-report of ΔT *before* applying: the nodes of `sdfg`
    /// this transformation will modify.  Cutouts are extracted from the
    /// original program around exactly these nodes (Sec. 3).  The default
    /// reports the pattern nodes plus the endpoints of their incident edges.
    virtual ChangeSet affected_nodes(const ir::SDFG& sdfg, const Match& match) const;

    /// Applies to one match, mutating `sdfg`, and bumps the SDFG's mutation
    /// epoch so interpreter plan caches keyed on it are invalidated — a warm
    /// interpreter can be reused on the transformed graph.  The epoch is
    /// bumped even when apply_impl throws (the graph may be half-rewritten).
    void apply(ir::SDFG& sdfg, const Match& match) const;

protected:
    /// The rewrite itself.  Must rely only on the pattern structure (so it
    /// can be replayed inside an extracted cutout through the extraction
    /// node mapping).
    virtual void apply_impl(ir::SDFG& sdfg, const Match& match) const = 0;
};

using TransformationPtr = std::unique_ptr<Transformation>;

// --- Shared code-rewriting utilities (textual, token-aware) ---

/// Renames identifier `from` to `to` in tasklet code (whole tokens only;
/// function names followed by '(' are left untouched when `from` collides).
std::string rename_identifier(const std::string& code, const std::string& from,
                              const std::string& to);

/// Rewrites scalar tasklet code into `width`-lane vector code: statements
/// are replicated per lane, and identifiers in `vector_vars` become `x[l]`
/// (other connectors are broadcast scalars and stay unindexed — but then
/// only lane 0 of such an output would be written, so vectorization requires
/// all *outputs* to be vector vars).  Used by Vectorization.
std::string vectorize_tasklet_code(const std::string& code, int width,
                                   const std::set<std::string>& vector_vars);

}  // namespace ff::xform
