// Buffer tiling: tiles a producer/consumer map pair that communicates
// through a transient buffer, shrinking the buffer to one tile
// ("BufferTiling: Tiles buffers between loops", Table 2).
//
//   map_i { T[i] = f(in[i]) }  ;  map_j { out[j] = g(T[j], ...) }
//
// becomes a sequential tile loop containing both (shrunk) maps operating on
// a tile-sized buffer Tt:
//
//   for bt in 0..N step TS:
//     map_i in [bt, min(bt+TS-1, N-1)] { Tt[i - bt] = f(in[i]) }
//     map_j in [bt, min(bt+TS-1, N-1)] { out[j] = g(Tt[j - bt], ...) }
//
// The bug variant indexes the tile buffer back to front in the consumer
// (Tt[bt + TS - 1 - j]) — in bounds, but wrong values: the `✗` change in
// semantics of Table 2.
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class BufferTiling : public Transformation {
public:
    enum class Variant { Correct, ReversedOffset };

    explicit BufferTiling(std::int64_t tile_size = 8, Variant variant = Variant::Correct)
        : tile_size_(tile_size), variant_(variant) {}

    std::string name() const override {
        return variant_ == Variant::Correct ? "BufferTiling"
                                            : "BufferTiling[bug:reversed-offset]";
    }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    std::int64_t tile_size_;
    Variant variant_;
};

}  // namespace ff::xform
