// State-assignment elimination: removes apparently-dead symbol assignments
// from interstate edges ("StateAssignElimination: Program simplification",
// Table 2).
//
// Correct mode performs a whole-program liveness check.  The bug variant
// only inspects the memlets of the *immediately following* state — an
// assignment consumed by a later state or by an interstate condition is
// removed, and evaluating the now-unbound symbol crashes at runtime
// (`generates invalid code`).
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class StateAssignElimination : public Transformation {
public:
    enum class Variant { Correct, NextStateOnly };

    explicit StateAssignElimination(Variant variant = Variant::Correct) : variant_(variant) {}

    std::string name() const override {
        return variant_ == Variant::Correct ? "StateAssignElimination"
                                            : "StateAssignElimination[bug:next-state-only]";
    }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
    ChangeSet affected_nodes(const ir::SDFG& sdfg, const Match& match) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    Variant variant_;
};

}  // namespace ff::xform
