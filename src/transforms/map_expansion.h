// Map expansion: splits a multi-dimensional map into a nest of
// one-dimensional maps ("MapExpansion: Removes collapsing from parallel
// nested loops", Table 2).
//
// The correct mode peels the first parameter into a fresh outer map and
// rewires the boundary edges through it.  The bug variant forgets to connect
// the inner exit to the new outer exit: the outer scope becomes malformed
// (its parameter is no longer visible to the body's memlets), which IR
// validation rejects — the `generates invalid code` failure class.
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class MapExpansion : public Transformation {
public:
    enum class Variant { Correct, DanglingExit };

    explicit MapExpansion(Variant variant = Variant::Correct) : variant_(variant) {}

    std::string name() const override {
        return variant_ == Variant::Correct ? "MapExpansion" : "MapExpansion[bug:dangling-exit]";
    }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    Variant variant_;
};

}  // namespace ff::xform
