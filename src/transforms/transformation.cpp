#include "transforms/transformation.h"

#include <cctype>

namespace ff::xform {

void ChangeSet::merge(const ChangeSet& other) {
    nodes.insert(other.nodes.begin(), other.nodes.end());
    control_flow_states.insert(other.control_flow_states.begin(),
                               other.control_flow_states.end());
}

void Transformation::apply(ir::SDFG& sdfg, const Match& match) const {
    try {
        apply_impl(sdfg, match);
    } catch (...) {
        sdfg.bump_mutation_epoch();
        throw;
    }
    sdfg.bump_mutation_epoch();
}

ChangeSet Transformation::affected_nodes(const ir::SDFG& sdfg, const Match& match) const {
    ChangeSet delta;
    if (match.state == graph::kInvalidNode) return delta;
    const ir::State& st = sdfg.state(match.state);
    for (ir::NodeId n : match.nodes) {
        delta.add(match.state, n);
        // "If the change includes modified, added, or removed edges, both
        // the edge source and destination nodes are considered modified."
        for (graph::EdgeId eid : st.graph().in_edges(n))
            delta.add(match.state, st.graph().edge(eid).src);
        for (graph::EdgeId eid : st.graph().out_edges(n))
            delta.add(match.state, st.graph().edge(eid).dst);
    }
    return delta;
}

namespace {

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Calls `fn(start, end, is_function_call)` for every identifier token.
template <typename Fn>
void for_each_identifier(const std::string& code, Fn&& fn) {
    std::size_t i = 0;
    while (i < code.size()) {
        const char c = code[i];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t start = i;
            while (i < code.size() && ident_char(code[i])) ++i;
            // Look ahead for '(' (function call).
            std::size_t j = i;
            while (j < code.size() && (code[j] == ' ' || code[j] == '\t')) ++j;
            const bool is_call = j < code.size() && code[j] == '(';
            fn(start, i, is_call);
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            // Skip numeric literals (including exponents) so "1e5" is not
            // treated as containing identifier "e5".
            while (i < code.size() &&
                   (ident_char(code[i]) || code[i] == '.' ||
                    ((code[i] == '+' || code[i] == '-') && i > 0 &&
                     (code[i - 1] == 'e' || code[i - 1] == 'E'))))
                ++i;
        } else {
            ++i;
        }
    }
}

}  // namespace

std::string rename_identifier(const std::string& code, const std::string& from,
                              const std::string& to) {
    std::string out;
    out.reserve(code.size());
    std::size_t last = 0;
    for_each_identifier(code, [&](std::size_t start, std::size_t end, bool is_call) {
        const std::string tok = code.substr(start, end - start);
        out.append(code, last, start - last);
        if (tok == from && !is_call) out += to;
        else out += tok;
        last = end;
    });
    out.append(code, last, code.size() - last);
    return out;
}

std::string vectorize_tasklet_code(const std::string& code, int width,
                                   const std::set<std::string>& vector_vars) {
    // Lane-expand: x -> x[l] for vector connectors; function names and
    // broadcast scalars are untouched.
    std::string out;
    for (int lane = 0; lane < width; ++lane) {
        std::string lane_code;
        std::size_t last = 0;
        for_each_identifier(code, [&](std::size_t start, std::size_t end, bool is_call) {
            const std::string tok = code.substr(start, end - start);
            lane_code.append(code, last, start - last);
            lane_code += tok;
            if (!is_call && vector_vars.count(tok)) lane_code += "[" + std::to_string(lane) + "]";
            last = end;
        });
        lane_code.append(code, last, code.size() - last);
        if (lane) out += "; ";
        out += lane_code;
    }
    return out;
}

}  // namespace ff::xform
