// Symbol alias promotion: replaces a pure symbol alias (`s2 := s1` on an
// interstate edge) by renaming s2 to s1 everywhere and dropping the
// assignment ("SymbolAliasPromotion: Program simplification", Table 2).
//
// Correct mode substitutes in every state's memlets and map ranges as well
// as all interstate expressions, then retires the symbol.  The bug variant
// substitutes only at the interstate level and still retires the symbol —
// state-level memlets keep referring to a symbol that no longer exists,
// which validation rejects (`generates invalid code`).
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class SymbolAliasPromotion : public Transformation {
public:
    enum class Variant { Correct, InterstateOnly };

    explicit SymbolAliasPromotion(Variant variant = Variant::Correct) : variant_(variant) {}

    std::string name() const override {
        return variant_ == Variant::Correct ? "SymbolAliasPromotion"
                                            : "SymbolAliasPromotion[bug:interstate-only]";
    }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
    ChangeSet affected_nodes(const ir::SDFG& sdfg, const Match& match) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    Variant variant_;
};

}  // namespace ff::xform
