// GPU kernel extraction (the custom CLOUDSC transformation of Sec. 6.4).
//
// Converts a top-level parallel map into a (simulated) GPU kernel:
//  1. creates a Device-storage twin `gpu_X` for every container the scope
//     touches,
//  2. retargets all scope memlets to the twins and sets the GPU schedule,
//  3. copies inputs host->device before the kernel, and
//  4. copies every touched container back device->host *in its entirety*
//     after the kernel (this whole-container copy is faithful to the
//     engineers' transformation, per the paper).
//
// Correct mode also pre-copies *output* containers host->device, so the
// whole-container copy-back is benign.  The bug variant skips that: device
// twins of outputs start as uninitialized (garbage-filled) memory, and if
// the kernel writes only a subset, "this causes garbage values to be copied
// back to the host, potentially overwriting existing computation results"
// (Fig. 7).
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class GpuKernelExtraction : public Transformation {
public:
    enum class Variant { Correct, NoOutputCopyIn };

    explicit GpuKernelExtraction(Variant variant = Variant::Correct) : variant_(variant) {}

    std::string name() const override {
        return variant_ == Variant::Correct ? "GpuKernelExtraction"
                                            : "GpuKernelExtraction[bug:no-output-copy-in]";
    }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    Variant variant_;
};

}  // namespace ff::xform
