// Tasklet fusion: subsume a producer tasklet into its consumer, eliminating
// the temporary container between them (the Fig. 4 example: fold `z * 2`
// into the call consuming `tmp`).
//
// Correct mode requires the temporary to be transient and accessed nowhere
// else in the program.  The bug variant skips that check — fusing away a
// write whose value is read again later, the `✗` (change in semantics)
// failure of Table 2 (and the same root cause as the CLOUDSC write
// elimination bug of Sec. 6.4).
#pragma once

#include "transforms/transformation.h"

namespace ff::xform {

class TaskletFusion : public Transformation {
public:
    enum class Variant { Correct, IgnoreDownstreamReads };

    explicit TaskletFusion(Variant variant = Variant::Correct) : variant_(variant) {}

    std::string name() const override {
        return variant_ == Variant::Correct ? "TaskletFusion"
                                            : "TaskletFusion[bug:ignores-downstream-reads]";
    }
    std::vector<Match> find_matches(const ir::SDFG& sdfg) const override;
protected:
    void apply_impl(ir::SDFG& sdfg, const Match& match) const override;

private:
    Variant variant_;
};

}  // namespace ff::xform
