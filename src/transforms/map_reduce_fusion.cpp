#include "transforms/map_reduce_fusion.h"

#include "interp/tasklet_lang.h"

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

std::vector<Match> MapReduceFusion::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        const auto& g = st.graph();
        for (ir::NodeId red : g.nodes()) {
            const DataflowNode& rn = g.node(red);
            if (rn.kind != NodeKind::Library || rn.lib != ir::LibraryKind::ReduceSum) continue;
            // Pattern: map -> access(T) -> reduce -> access(S).
            if (g.in_degree(red) != 1 || g.out_degree(red) != 1) continue;
            const ir::NodeId acc_t = g.edge(g.in_edges(red)[0]).src;
            const ir::NodeId acc_s = g.edge(g.out_edges(red)[0]).dst;
            if (g.node(acc_t).kind != NodeKind::Access) continue;
            if (g.node(acc_s).kind != NodeKind::Access) continue;
            if (g.in_degree(acc_t) != 1 || g.out_degree(acc_t) != 1) continue;
            const ir::NodeId m_exit = g.edge(g.in_edges(acc_t)[0]).src;
            if (g.node(m_exit).kind != NodeKind::MapExit) continue;
            const ir::NodeId m_entry = st.map_entry_of(m_exit);
            if (m_entry == graph::kInvalidNode) continue;
            if (st.parent_scope_of(m_entry) != graph::kInvalidNode) continue;
            const DataflowNode& en = g.node(m_entry);
            if (en.params.size() != 1) continue;

            const auto inside = st.scope_nodes(m_entry);
            if (inside.size() != 1) continue;
            const ir::NodeId body = *inside.begin();
            if (g.node(body).kind != NodeKind::Tasklet) continue;
            // Single output connector writing T[i].
            if (g.out_degree(body) != 1) continue;
            const auto& out_memlet = g.edge(g.out_edges(body)[0]).data.memlet;
            if (out_memlet.data != g.node(acc_t).data) continue;

            // T: transient 1-D with no other uses; S: one scalar element.
            const ir::DataDesc& t_desc = sdfg.container(g.node(acc_t).data);
            if (!t_desc.transient || t_desc.dims() != 1) continue;
            int uses = 0;
            for (ir::StateId s2 : sdfg.states())
                uses += static_cast<int>(sdfg.state(s2).access_nodes(t_desc.name).size());
            if (uses != 1) continue;
            const ir::DataDesc& s_desc = sdfg.container(g.node(acc_s).data);
            if (s_desc.dims() != 0) continue;

            Match m;
            m.state = sid;
            m.nodes = {m_entry, body, m_exit, acc_t, red, acc_s};
            m.description = "fuse map '" + en.label + "' with reduction into '" +
                            s_desc.name + "'";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void MapReduceFusion::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    auto& g = st.graph();
    const ir::NodeId m_entry = match.nodes.at(0);
    const ir::NodeId body = match.nodes.at(1);
    const ir::NodeId m_exit = match.nodes.at(2);
    const ir::NodeId acc_t = match.nodes.at(3);
    const ir::NodeId red = match.nodes.at(4);
    const ir::NodeId acc_s = match.nodes.at(5);
    const std::string t_data = g.node(acc_t).data;
    const std::string s_data = g.node(acc_s).data;

    // The accumulation must run in order.
    g.node(m_entry).schedule = ir::Schedule::Sequential;

    // Rewrite the body: `conn = RHS` becomes
    // `__part = RHS; red_out = red_in + __part`.
    const std::string out_conn = g.edge(g.out_edges(body)[0]).data.src_conn;
    DataflowNode& tasklet = g.node(body);
    tasklet.code = rename_identifier(tasklet.code, out_conn, "__part") +
                   "; red_out = red_in + __part";

    // Zero-initialize S ahead of the loop.
    const ir::NodeId init = st.add_tasklet("init_" + s_data, "z = 0.0");
    const ir::NodeId acc_s_init = st.add_access(s_data);
    const ir::Memlet s_memlet(s_data, ir::Subset{});
    st.add_edge(init, "z", acc_s_init, "", s_memlet);
    st.add_edge(acc_s_init, "", m_entry, "", s_memlet);

    // Accumulate through the scope boundary.
    st.add_edge(m_entry, "", body, "red_in", s_memlet);
    g.remove_edge(g.out_edges(body)[0]);  // old T[i] write
    st.add_edge(body, "red_out", m_exit, "", s_memlet);
    st.add_edge(m_exit, "", acc_s, "", s_memlet);

    // Remove the reduction and the intermediate buffer.
    g.remove_node(red);
    if (variant_ == Variant::Correct) g.remove_node(acc_t);
    // StaleAccessNode: acc_t remains, referencing a container we delete.
    sdfg.remove_container(t_data);
}

}  // namespace ff::xform
