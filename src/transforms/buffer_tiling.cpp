#include "transforms/buffer_tiling.h"

namespace ff::xform {

using ir::DataflowNode;
using ir::NodeKind;

namespace {

/// Matches the single-tasklet 1-D map scope shape; returns the tasklet.
ir::NodeId single_tasklet_scope(const ir::State& st, ir::NodeId entry) {
    const DataflowNode& n = st.graph().node(entry);
    if (n.kind != NodeKind::MapEntry || n.params.size() != 1) return graph::kInvalidNode;
    if (!(n.map_ranges[0].step->is_constant() && n.map_ranges[0].step->constant_value() == 1))
        return graph::kInvalidNode;
    const auto inside = st.scope_nodes(entry);
    if (inside.size() != 1) return graph::kInvalidNode;
    const ir::NodeId body = *inside.begin();
    return st.graph().node(body).kind == NodeKind::Tasklet ? body : graph::kInvalidNode;
}

}  // namespace

std::vector<Match> BufferTiling::find_matches(const ir::SDFG& sdfg) const {
    std::vector<Match> matches;
    for (ir::StateId sid : sdfg.states()) {
        const ir::State& st = sdfg.state(sid);
        const auto& g = st.graph();
        for (ir::NodeId acc : g.nodes()) {
            const DataflowNode& an = g.node(acc);
            if (an.kind != NodeKind::Access) continue;
            if (g.in_degree(acc) != 1 || g.out_degree(acc) != 1) continue;
            const ir::NodeId m1_exit = g.edge(g.in_edges(acc)[0]).src;
            const ir::NodeId m2_entry = g.edge(g.out_edges(acc)[0]).dst;
            if (g.node(m1_exit).kind != NodeKind::MapExit) continue;
            if (g.node(m2_entry).kind != NodeKind::MapEntry) continue;
            const ir::NodeId m1_entry = st.map_entry_of(m1_exit);
            const ir::NodeId m2_exit = st.map_exit_of(m2_entry);
            if (m1_entry == graph::kInvalidNode || m2_exit == graph::kInvalidNode) continue;
            if (st.parent_scope_of(m1_entry) != graph::kInvalidNode) continue;
            if (st.parent_scope_of(m2_entry) != graph::kInvalidNode) continue;

            const ir::NodeId t1 = single_tasklet_scope(st, m1_entry);
            const ir::NodeId t2 = single_tasklet_scope(st, m2_entry);
            if (t1 == graph::kInvalidNode || t2 == graph::kInvalidNode) continue;

            const DataflowNode& e1 = g.node(m1_entry);
            const DataflowNode& e2 = g.node(m2_entry);
            // Identical iteration spaces.
            if (!e1.map_ranges[0].begin->equals(*e2.map_ranges[0].begin)) continue;
            if (!e1.map_ranges[0].end->equals(*e2.map_ranges[0].end)) continue;

            // The buffer must be 1-D transient, written as T[i] and read as
            // T[j] (the respective map parameters), with no other uses.
            const ir::DataDesc& desc = sdfg.container(an.data);
            if (!desc.transient || desc.dims() != 1) continue;
            int uses = 0;
            for (ir::StateId s2 : sdfg.states())
                uses += static_cast<int>(sdfg.state(s2).access_nodes(an.data).size());
            if (uses != 1) continue;

            auto writes_exact_param = [&](ir::NodeId tasklet, const std::string& param,
                                          bool outgoing) {
                const auto& edges = outgoing ? g.out_edges(tasklet) : g.in_edges(tasklet);
                for (graph::EdgeId eid : edges) {
                    const auto& m = g.edge(eid).data.memlet;
                    if (m.data != an.data) continue;
                    const sym::ExprPtr p = sym::symb(param);
                    if (m.subset.dims() == 1 && m.subset.ranges[0].begin->equals(*p) &&
                        m.subset.ranges[0].end->equals(*p))
                        return true;
                }
                return false;
            };
            if (!writes_exact_param(t1, e1.params[0], /*outgoing=*/true)) continue;
            if (!writes_exact_param(t2, e2.params[0], /*outgoing=*/false)) continue;

            Match m;
            m.state = sid;
            m.nodes = {m1_entry, t1, m1_exit, acc, m2_entry, t2, m2_exit};
            m.description = "buffer-tile '" + an.data + "' between maps '" + e1.label +
                            "' and '" + e2.label + "'";
            matches.push_back(std::move(m));
        }
    }
    return matches;
}

void BufferTiling::apply_impl(ir::SDFG& sdfg, const Match& match) const {
    ir::State& st = sdfg.state(match.state);
    auto& g = st.graph();
    const ir::NodeId m1_entry = match.nodes.at(0);
    const ir::NodeId t1 = match.nodes.at(1);
    const ir::NodeId m1_exit = match.nodes.at(2);
    const ir::NodeId acc = match.nodes.at(3);
    const ir::NodeId m2_entry = match.nodes.at(4);
    const ir::NodeId t2 = match.nodes.at(5);
    const ir::NodeId m2_exit = match.nodes.at(6);

    const DataflowNode e1 = g.node(m1_entry);  // copies: nodes get removed below
    const DataflowNode e2 = g.node(m2_entry);
    const std::string t_data = g.node(acc).data;
    const ir::DataDesc t_desc = sdfg.container(t_data);

    // Tile-sized replacement buffer.
    const std::string tt = sdfg.fresh_container_name(t_data + "_tile");
    sdfg.add_array(tt, t_desc.dtype, {sym::cst(tile_size_)}, /*transient=*/true);

    const sym::ExprPtr lo = e1.map_ranges[0].begin;
    const sym::ExprPtr hi = e1.map_ranges[0].end;
    const std::string bt = "__bt";
    const sym::ExprPtr btv = sym::symb(bt);

    // New scopes.
    auto [outer_entry, outer_exit] =
        st.add_map("tilebuf_outer", {bt}, {ir::Range{lo, hi, sym::cst(tile_size_)}},
                   ir::Schedule::Sequential);
    const ir::Range inner_range{btv, sym::min(btv + (tile_size_ - 1), hi), sym::cst(1)};
    auto [in1_entry, in1_exit] =
        st.add_map("tilebuf_produce", {e1.params[0]}, {inner_range}, e1.schedule);
    auto [in2_entry, in2_exit] =
        st.add_map("tilebuf_consume", {e2.params[0]}, {inner_range}, e2.schedule);
    const ir::NodeId acc_tt = st.add_access(tt);

    // Collect original boundary edges before removal.
    struct Boundary {
        ir::NodeId peer;
        ir::MemletEdge data;
    };
    std::vector<Boundary> m1_inputs, m2_inputs, m2_outputs;
    for (graph::EdgeId eid : g.in_edges(m1_entry))
        m1_inputs.push_back({g.edge(eid).src, g.edge(eid).data});
    for (graph::EdgeId eid : g.in_edges(m2_entry))
        if (g.edge(eid).src != acc) m2_inputs.push_back({g.edge(eid).src, g.edge(eid).data});
    for (graph::EdgeId eid : g.out_edges(m2_exit))
        m2_outputs.push_back({g.edge(eid).dst, g.edge(eid).data});

    // Rewire tasklet edges: T -> Tt with the tile-local index.
    auto rewrite_t_memlet = [&](ir::Memlet& m, const std::string& param, bool consumer) {
        if (m.data != t_data) return;
        m.data = tt;
        const sym::ExprPtr p = sym::symb(param);
        sym::ExprPtr index = p - btv;  // tile-local position
        if (consumer && variant_ == Variant::ReversedOffset)
            index = sym::cst(tile_size_ - 1) - (p - btv);  // back-to-front: wrong values
        m.subset.ranges[0] = ir::Range::index(index);
    };

    // t1: inputs move from m1_entry to in1_entry; output goes to in1_exit.
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.in_edges(t1))) {
        auto edge = g.edge(eid);
        g.remove_edge(eid);
        g.add_edge(in1_entry, t1, edge.data);
    }
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.out_edges(t1))) {
        auto edge = g.edge(eid);
        g.remove_edge(eid);
        rewrite_t_memlet(edge.data.memlet, e1.params[0], /*consumer=*/false);
        g.add_edge(t1, in1_exit, edge.data);
    }
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.in_edges(t2))) {
        auto edge = g.edge(eid);
        g.remove_edge(eid);
        rewrite_t_memlet(edge.data.memlet, e2.params[0], /*consumer=*/true);
        g.add_edge(in2_entry, t2, edge.data);
    }
    for (graph::EdgeId eid : std::vector<graph::EdgeId>(g.out_edges(t2))) {
        auto edge = g.edge(eid);
        g.remove_edge(eid);
        g.add_edge(t2, in2_exit, edge.data);
    }

    // Structural wiring of the new scopes.
    const ir::Memlet tt_full(tt, ir::Subset{{ir::Range{sym::cst(0), sym::cst(tile_size_ - 1),
                                                       sym::cst(1)}}});
    st.add_edge(in1_exit, "", acc_tt, "", tt_full);
    st.add_edge(acc_tt, "", in2_entry, "", tt_full);

    for (const Boundary& b : m1_inputs) {
        st.add_edge(b.peer, b.data.src_conn, outer_entry, "", b.data.memlet);
        st.add_edge(outer_entry, "", in1_entry, b.data.dst_conn, b.data.memlet);
    }
    for (const Boundary& b : m2_inputs) {
        st.add_edge(b.peer, b.data.src_conn, outer_entry, "", b.data.memlet);
        st.add_edge(outer_entry, "", in2_entry, b.data.dst_conn, b.data.memlet);
    }
    for (const Boundary& b : m2_outputs) {
        st.add_edge(in2_exit, "", outer_exit, "", b.data.memlet);
        st.add_edge(outer_exit, b.data.src_conn, b.peer, b.data.dst_conn, b.data.memlet);
    }

    // Remove the original scopes, buffer access and container.
    g.remove_node(m1_entry);
    g.remove_node(m1_exit);
    g.remove_node(acc);
    g.remove_node(m2_entry);
    g.remove_node(m2_exit);
    sdfg.remove_container(t_data);
}

}  // namespace ff::xform
