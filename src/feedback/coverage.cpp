#include "feedback/coverage.h"

#include "common/error.h"

namespace ff::feedback {

namespace {

/// Portable popcount (the repo compiles without assuming <bit>).
inline int popcount64(std::uint64_t x) {
    int n = 0;
    while (x) {
        x &= x - 1;
        ++n;
    }
    return n;
}

}  // namespace

CovAtlas CovAtlas::build(const ir::SDFG& sdfg) {
    CovAtlas atlas;
    std::uint32_t next = 0;
    for (const ir::StateId sid : sdfg.states()) {
        const ir::State& state = sdfg.state(sid);
        const auto& graph = state.graph();
        for (const graph::NodeId nid : graph.nodes()) {
            if (graph.node(nid).kind != ir::NodeKind::Tasklet) continue;
            std::uint32_t accesses = 0;
            for (const graph::EdgeId eid : graph.in_edges(nid))
                if (!graph.edge(eid).data.dst_conn.empty()) ++accesses;
            accesses += static_cast<std::uint32_t>(graph.out_edges(nid).size());
            if (accesses == 0) continue;  // unconnected tasklet: nothing to cover
            atlas.base_[{sid, nid}] = next;
            next += accesses * kNumClasses;
        }
    }
    atlas.pairs_ = next;
    return atlas;
}

std::int64_t CoverageMap::count() const { return cov_popcount(words_); }

bool CoverageMap::absorb(const std::vector<std::uint64_t>& words) {
    if (words.size() > words_.size()) {
        for (std::size_t i = words_.size(); i < words.size(); ++i)
            if (words[i] != 0)
                throw common::Error("coverage words exceed the atlas's " +
                                    std::to_string(bits_) + " pairs — atlas mismatch");
    }
    bool grew = false;
    const std::size_t n = words.size() < words_.size() ? words.size() : words_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (words[i] & ~words_[i]) grew = true;
        words_[i] |= words[i];
    }
    return grew;
}

std::vector<std::uint64_t> CoverageMap::trimmed_words() const {
    std::vector<std::uint64_t> out = words_;
    while (!out.empty() && out.back() == 0) out.pop_back();
    return out;
}

std::string cov_words_to_hex(const std::vector<std::uint64_t>& words) {
    std::size_t n = words.size();
    while (n > 0 && words[n - 1] == 0) --n;
    static const char* digits = "0123456789abcdef";
    std::string out;
    out.reserve(n * 16);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t w = words[i];
        for (int shift = 60; shift >= 0; shift -= 4) out.push_back(digits[(w >> shift) & 0xF]);
    }
    return out;
}

std::vector<std::uint64_t> cov_words_from_hex(const std::string& hex) {
    if (hex.size() % 16 != 0)
        throw common::ParseError("coverage hex length " + std::to_string(hex.size()) +
                                 " is not a multiple of 16");
    std::vector<std::uint64_t> words(hex.size() / 16, 0);
    for (std::size_t i = 0; i < hex.size(); ++i) {
        const char c = hex[i];
        std::uint64_t digit;
        if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f') digit = static_cast<std::uint64_t>(c - 'a' + 10);
        else
            throw common::ParseError(std::string("invalid coverage hex digit '") + c + "'");
        words[i / 16] = (words[i / 16] << 4) | digit;
    }
    return words;
}

std::int64_t cov_popcount(const std::vector<std::uint64_t>& words) {
    std::int64_t n = 0;
    for (const std::uint64_t w : words) n += popcount64(w);
    return n;
}

}  // namespace ff::feedback
