// Dataflow def-use coverage: dense ids and a cheap bitmap (ROADMAP
// "Feedback-guided trial generation", after datAFLow's def-use association
// coverage).
//
// A *pair* is (memlet edge incident to a tasklet, subset-region class): the
// atlas enumerates every tasklet-incident memlet of an SDFG — inputs (in-edge
// order, skipping edges without a destination connector, exactly the
// interpreter's TaskletPlan input order) then outputs (all out-edges, in
// order) — and gives each one kNumClasses consecutive ids, one per region
// class.  The region class buckets how many map points the enclosing scope
// launch iterated (empty / one / few / many), so a trial that drives a map
// over an empty extent and one that floods it hit *different* pairs through
// the same memlet.  Dtype is part of the edge's identity already (container
// dtypes are fixed per SDFG), so (memlet, region class) keys the
// (memlet, subset-region, dtype-edge) def-use pair of the paper's framing.
//
// Determinism: the atlas is a pure function of the SDFG — states in
// `SDFG::states()` order, nodes in insertion order, edges in adjacency
// order — independent of plan-build order, execution tier, thread count and
// process.  Marking is charged at scope-launch granularity (not per point),
// and the launch's point count is tier-invariant by the fuel contract
// (docs/ARCHITECTURE.md clause 8), so every engine tier produces the same
// bitmap for the same inputs — the property that lets coverage ride the
// record stream without breaking byte-identical merges.
#pragma once

/// \file
/// Dense def-use pair ids (CovAtlas) and the per-trial coverage bitmap
/// (CoverageMap) with its canonical hex wire form.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ir/sdfg.h"

namespace ff::feedback {

/// Region classes per tasklet-incident memlet: the scope launch's iterated
/// point count bucketed as empty (0), one (1), few (2..16), many (>16).
inline constexpr int kNumClasses = 4;

/// The region class of a scope launch that iterated `points` map points.
inline int region_class(std::int64_t points) {
    if (points <= 0) return 0;
    if (points == 1) return 1;
    return points <= 16 ? 2 : 3;
}

/// Dense def-use pair enumeration of one SDFG.  Pure function of the graph;
/// see the file comment for the enumeration order.
class CovAtlas {
public:
    /// Enumerates `sdfg`'s tasklet-incident memlets.
    static CovAtlas build(const ir::SDFG& sdfg);

    /// Total def-use pairs (bitmap size in bits).
    std::uint32_t pair_count() const { return pairs_; }

    /// First pair id of tasklet `node` in state `state` (its access 0,
    /// class 0); -1 when the node is not an enumerated tasklet.  Access j's
    /// class-c pair is `base + j * kNumClasses + c`.
    std::int64_t base_of(ir::StateId state, graph::NodeId node) const {
        const auto it = base_.find({state, node});
        return it == base_.end() ? -1 : static_cast<std::int64_t>(it->second);
    }

private:
    std::map<std::pair<ir::StateId, graph::NodeId>, std::uint32_t> base_;
    std::uint32_t pairs_ = 0;
};

/// Fixed-size bitmap over a CovAtlas's pair ids.  mark() is the interpreter
/// hot-path operation: one shift, one or.
class CoverageMap {
public:
    /// Sizes the map for `bits` pairs and clears every bit.
    void reset(std::uint32_t bits) {
        bits_ = bits;
        words_.assign((bits + 63) / 64, 0);
    }

    /// Sets pair `id`.  Requires id < bit_size().
    void mark(std::uint32_t id) { words_[id >> 6] |= std::uint64_t{1} << (id & 63); }

    /// Whether pair `id` is set.
    bool test(std::uint32_t id) const {
        return (id >> 6) < words_.size() && (words_[id >> 6] >> (id & 63)) & 1;
    }

    /// Number of set pairs.
    std::int64_t count() const;

    /// ORs `words` (a trimmed or full word vector) into the map; returns
    /// true when at least one previously unset bit was set — the "reached
    /// new pairs" test the corpus scan runs.  Words beyond bit_size() must
    /// be zero (an atlas mismatch) and throw common::Error.
    bool absorb(const std::vector<std::uint64_t>& words);

    /// The backing words (fixed length, trailing zeros included).
    const std::vector<std::uint64_t>& words() const { return words_; }

    /// Canonical wire form of the current bits: trailing zero words trimmed.
    std::vector<std::uint64_t> trimmed_words() const;

    std::uint32_t bit_size() const { return bits_; }

private:
    std::uint32_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

/// Canonical hex wire form of coverage words: trailing zero words trimmed,
/// then each word as 16 lowercase hex digits (least significant word
/// first).  The empty vector encodes as "".
std::string cov_words_to_hex(const std::vector<std::uint64_t>& words);

/// Inverse of cov_words_to_hex; throws common::ParseError on malformed
/// input (length not a multiple of 16, non-hex digits).
std::vector<std::uint64_t> cov_words_from_hex(const std::string& hex);

/// Set bits across `words`.
std::int64_t cov_popcount(const std::vector<std::uint64_t>& words);

}  // namespace ff::feedback
