#include "feedback/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/checksum.h"
#include "common/error.h"

namespace ff::feedback {

namespace {

/// Appends the per-line CRC to a compact, canonical JSON object dump (which
/// always ends in '}'): the CRC is over the line without its "crc" field,
/// the same convention as the shard record stream.
std::string sealed_line(const common::Json& obj) {
    std::string line = obj.dump();
    const std::uint32_t crc = common::crc32c(line);
    line.insert(line.size() - 1, ",\"crc\":\"" + common::crc32c_hex(crc) + "\"");
    return line + "\n";
}

/// Verifies and strips the "crc" field of a parsed line; throws
/// IntegrityError naming `path` and `line_no` on a mismatch.
common::Json verify_line(const std::string& path, int line_no, const std::string& text) {
    common::Json j;
    try {
        j = common::Json::parse(text);
    } catch (const common::ParseError& e) {
        throw common::FileParseError(path, line_no, common::error_detail(e));
    }
    if (!j.is_object() || !j.contains("crc"))
        throw common::IntegrityError(path, line_no, "line is missing its checksum");
    std::uint32_t stored = 0;
    if (!common::crc32c_parse(common::json_string(j, "crc"), stored))
        throw common::IntegrityError(path, line_no, "malformed checksum field");
    j.as_object().erase("crc");
    if (common::crc32c(j.dump()) != stored)
        throw common::IntegrityError(path, line_no, "line checksum mismatch");
    return j;
}

}  // namespace

common::Json corpus_entry_to_json(const CorpusEntry& entry) {
    common::JsonObject o;
    o["instance"] = common::Json(entry.instance);
    o["trial"] = common::Json(entry.trial);
    o["cov"] = common::Json(entry.cov_hex);
    o["inputs"] = entry.inputs;
    return common::Json(std::move(o));
}

CorpusEntry corpus_entry_from_json(const common::Json& j) {
    CorpusEntry entry;
    entry.instance = common::json_int(j, "instance");
    entry.trial = common::json_int(j, "trial");
    entry.cov_hex = common::json_string(j, "cov");
    entry.inputs = j.at("inputs");
    return entry;
}

std::vector<CorpusEntry> merge_corpus_entries(std::vector<CorpusEntry> entries) {
    std::stable_sort(entries.begin(), entries.end(),
                     [](const CorpusEntry& a, const CorpusEntry& b) {
                         return a.instance != b.instance ? a.instance < b.instance
                                                         : a.trial < b.trial;
                     });
    std::vector<CorpusEntry> out;
    out.reserve(entries.size());
    for (auto& e : entries) {
        if (!out.empty() && out.back().instance == e.instance && out.back().trial == e.trial)
            continue;
        out.push_back(std::move(e));
    }
    return out;
}

std::uint32_t corpus_digest_fold(std::uint32_t digest, const CorpusEntry& entry) {
    const std::string key = std::to_string(entry.trial) + ":" + entry.cov_hex + ";";
    return common::crc32c(key, digest);
}

void write_corpus_file(const std::string& path, const common::Json& job,
                       const std::vector<CorpusEntry>& entries) {
    std::string bytes;
    {
        common::JsonObject header;
        header["type"] = common::Json(std::string("corpus-header"));
        header["format"] = common::Json(std::int64_t{1});
        header["job"] = job;
        bytes += sealed_line(common::Json(std::move(header)));
    }
    for (const CorpusEntry& entry : entries) {
        common::JsonObject line;
        line["type"] = common::Json(std::string("entry"));
        line["entry"] = corpus_entry_to_json(entry);
        bytes += sealed_line(common::Json(std::move(line)));
    }
    {
        common::JsonObject trailer;
        trailer["type"] = common::Json(std::string("trailer"));
        trailer["entries"] = common::Json(static_cast<std::int64_t>(entries.size()));
        trailer["digest"] = common::Json(common::crc32c_hex(common::crc32c(bytes)));
        bytes += sealed_line(common::Json(std::move(trailer)));
    }

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) throw common::Error("cannot write " + tmp);
        out << bytes;
        out.close();
        if (out.fail()) throw common::Error("short write to " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) throw common::Error("cannot rename " + tmp + " to " + path + ": " + ec.message());
}

CorpusFile read_corpus_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw common::Error("cannot read " + path);

    CorpusFile file;
    std::string line;
    int line_no = 0;
    bool have_header = false;
    bool have_trailer = false;
    std::uint32_t digest = 0;
    while (std::getline(in, line)) {
        ++line_no;
        if (have_trailer)
            throw common::IntegrityError(path, line_no, "data after the corpus trailer");
        const common::Json j = verify_line(path, line_no, line);
        const std::string& type = common::json_string(j, "type");
        if (line_no == 1) {
            if (type != "corpus-header")
                throw common::FileParseError(path, 1, "expected a corpus-header line");
            if (common::json_int(j, "format") != 1)
                throw common::FileParseError(path, 1, "unsupported corpus format " +
                                                          std::to_string(common::json_int(j, "format")));
            file.job = j.at("job");
            have_header = true;
        } else if (type == "entry") {
            CorpusEntry entry = corpus_entry_from_json(j.at("entry"));
            if (!file.entries.empty()) {
                const CorpusEntry& prev = file.entries.back();
                if (std::make_pair(prev.instance, prev.trial) >=
                    std::make_pair(entry.instance, entry.trial))
                    throw common::FileParseError(
                        path, line_no,
                        "entries out of canonical order at instance " +
                            std::to_string(entry.instance) + ", trial " +
                            std::to_string(entry.trial));
            }
            file.entries.push_back(std::move(entry));
        } else if (type == "trailer") {
            if (common::json_int(j, "entries") !=
                static_cast<std::int64_t>(file.entries.size()))
                throw common::IntegrityError(
                    path, line_no,
                    "trailer claims " + std::to_string(common::json_int(j, "entries")) +
                        " entries but the file carries " + std::to_string(file.entries.size()));
            std::uint32_t stored = 0;
            if (!common::crc32c_parse(common::json_string(j, "digest"), stored))
                throw common::IntegrityError(path, line_no, "malformed trailer digest");
            if (stored != digest)
                throw common::IntegrityError(path, line_no, "corpus digest mismatch");
            have_trailer = true;
            continue;  // digest covers bytes before the trailer only
        } else {
            throw common::FileParseError(path, line_no, "unknown line type '" + type + "'");
        }
        digest = common::crc32c(line + "\n", digest);
    }
    if (!have_header) throw common::FileParseError(path, 1, "no parseable corpus-header line");
    if (!have_trailer)
        throw common::FileParseError(path, line_no + 1, "corpus file is missing its trailer");
    return file;
}

}  // namespace ff::feedback
