// The feedback corpus: input configurations that reached new def-use pairs.
//
// A corpus entry pins one trial — (instance, trial index), the trial's full
// coverage bitmap, and its exact input configuration — for the trials whose
// coverage added at least one new pair to the instance's cumulative map when
// scanned in canonical (ascending trial) order.  Because trial inputs and
// original-side coverage are pure functions of the job (docs/ARCHITECTURE.md
// clause 10), the corpus is too: every process that derives it — a
// single-process audit, a shard merge, a coordinator fleet — produces
// byte-identical entries, and merging per-shard derivations is a plain
// canonical-order union with duplicates dropped.
//
// The corpus file mirrors the shard record stream's integrity format
// (records v2): one compact JSON object per line, each carrying a trailing
// per-line CRC32C over its other bytes, sealed by a trailer line with the
// entry count and the rolling CRC32C digest of every preceding byte:
//   {"format":1,"job":{...},"type":"corpus-header","crc":"xxxxxxxx"}
//   {"entry":{...},"type":"entry","crc":"xxxxxxxx"}        (ascending order)
//   {"digest":"xxxxxxxx","entries":<n>,"type":"trailer","crc":"xxxxxxxx"}
#pragma once

/// \file
/// feedback::CorpusEntry, canonical idempotent merge, the instance-local
/// sampling digest, and the CRC-sealed corpus file reader/writer.

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"

namespace ff::feedback {

/// One corpus entry: a trial whose coverage reached new def-use pairs.
struct CorpusEntry {
    std::int64_t instance = 0;  ///< Instance index within the audit.
    std::int64_t trial = 0;     ///< Trial index within the instance.
    /// Canonical hex (cov_words_to_hex) of the trial's full coverage bitmap.
    std::string cov_hex;
    /// The trial's exact input configuration (core::context_to_json form).
    common::Json inputs;
};

/// Wire form of one entry; canonical (key-sorted compact dump).
common::Json corpus_entry_to_json(const CorpusEntry& entry);
CorpusEntry corpus_entry_from_json(const common::Json& j);

/// Canonical idempotent merge: sorts by (instance, trial) and drops
/// duplicate keys (shards derive identical entries for overlapping trials,
/// so which duplicate survives cannot matter).  merge(merge(a) + b) ==
/// merge(a + b) — the property that makes shard and fleet corpora
/// byte-identical however derivation work was split.
std::vector<CorpusEntry> merge_corpus_entries(std::vector<CorpusEntry> entries);

/// Rolls `entry` into an instance-local corpus digest — the value that
/// parameterizes the next generation's mutations.  Chained: start from 0,
/// fold entries in canonical order.  Covers the trial index and coverage
/// (the inputs are already a pure function of those plus the chain).
std::uint32_t corpus_digest_fold(std::uint32_t digest, const CorpusEntry& entry);

/// Writes the CRC-sealed corpus file (atomic: <path>.tmp + rename).  `job`
/// is the job-identity document stored in the header (JobSpec::to_json for
/// audits; any object).  Entries must already be in canonical order.
void write_corpus_file(const std::string& path, const common::Json& job,
                       const std::vector<CorpusEntry>& entries);

/// Parsed corpus file.
struct CorpusFile {
    common::Json job;                  ///< Header job-identity document.
    std::vector<CorpusEntry> entries;  ///< In file (canonical) order.
};

/// Reads and fully verifies a corpus file: per-line CRCs, ascending entry
/// order, trailer digest and count.  Throws common::FileParseError on
/// malformed content and common::IntegrityError on checksum/digest
/// violations, naming the file and 1-based line.
CorpusFile read_corpus_file(const std::string& path);

}  // namespace ff::feedback
