#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace ff::common {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) {
        // Full 64-bit range requested.
        return static_cast<std::int64_t>((*this)());
    }
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t draw = (*this)();
    while (draw >= limit) draw = (*this)();
    return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::uniform_double(double lo, double hi) {
    // 53 bits of mantissa from the top of the 64-bit draw.
    const double unit = static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    return lo + unit * (hi - lo);
}

}  // namespace ff::common
