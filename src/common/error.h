// Error types shared across the FuzzyFlow library.
//
// The interpreter intentionally converts *all* runtime misbehaviour (out of
// bounds accesses, unbound symbols, malformed graphs, non-terminating state
// machines) into typed exceptions.  The differential tester catches them and
// maps them onto the paper's verdict categories ("crashes or hangs while the
// original does not", Sec. 5.1).
#pragma once

#include <stdexcept>
#include <string>

namespace ff::common {

/// Base class for every error raised by the library.
class Error : public std::runtime_error {
public:
    explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

/// A symbol was evaluated without a binding (surfaces e.g. the
/// StateAssignElimination "generates invalid code" bug class).
class UnboundSymbolError : public Error {
public:
    explicit UnboundSymbolError(const std::string& symbol)
        : Error("unbound symbol: " + symbol), symbol_(symbol) {}
    const std::string& symbol() const { return symbol_; }

private:
    std::string symbol_;
};

/// A container access fell outside the allocated extent.
class OutOfBoundsError : public Error {
public:
    OutOfBoundsError(const std::string& container, long long index, long long size)
        : Error("out-of-bounds access on '" + container + "': index " +
                std::to_string(index) + " not in [0, " + std::to_string(size) + ")"),
          container_(container) {}
    const std::string& container() const { return container_; }

private:
    std::string container_;
};

/// The program graph violates a structural invariant.
class ValidationError : public Error {
public:
    explicit ValidationError(const std::string& msg) : Error("validation: " + msg) {}
};

/// The state machine exceeded the configured transition budget (hang proxy).
class HangError : public Error {
public:
    explicit HangError(long long limit)
        : Error("state machine exceeded " + std::to_string(limit) + " transitions") {}
};

/// A deterministic per-execution resource budget was exhausted (map-point
/// fuel or the allocation budget).  The message names only the limit —
/// never a running counter — so every execution tier raises byte-identical
/// text from whichever program point it detects exhaustion at.
class ResourceError : public Error {
public:
    explicit ResourceError(const std::string& msg) : Error(msg) {}

    static ResourceError points(long long limit) {
        return ResourceError("map execution exceeded " + std::to_string(limit) + " points");
    }
    static ResourceError alloc(long long limit) {
        return ResourceError("allocation exceeded " + std::to_string(limit) + " bytes");
    }
};

/// Malformed textual input (expression / tasklet / JSON parsing).
class ParseError : public Error {
public:
    explicit ParseError(const std::string& msg) : Error("parse: " + msg) {}
};

/// Malformed content of a named input file (a shard manifest, a record
/// stream, a test case): carries the file path and — when known — the line,
/// so diagnostics read `plan/shard-0.json, line 3: expected ':'` instead of
/// a bare parse throw.  The ffaudit CLI maps this type to its own exit code.
class FileParseError : public ParseError {
public:
    FileParseError(const std::string& path, int line, const std::string& what)
        : ParseError(path + (line > 0 ? ", line " + std::to_string(line) : "") + ": " + what),
          path_(path),
          line_(line) {}
    const std::string& path() const { return path_; }
    int line() const { return line_; }  ///< 1-based; 0 when unknown.

private:
    std::string path_;
    int line_;
};

/// Checksummed content failed its integrity verification: a record-stream
/// line whose CRC32C does not match its bytes, a trailer whose digest or
/// record count disagrees with the stream, or data appearing after the
/// trailer.  Deliberately NOT a ParseError — the bytes may parse fine; they
/// are provably not the bytes that were written.  The ffaudit CLI maps this
/// to the merge/validation exit code (6), and `ffaudit fsck --repair` can
/// truncate the file back to its last verifiable prefix.
class IntegrityError : public Error {
public:
    IntegrityError(const std::string& path, int line, const std::string& what)
        : Error(path + (line > 0 ? ", line " + std::to_string(line) : "") + ": " + what),
          path_(path),
          line_(line) {}
    const std::string& path() const { return path_; }
    int line() const { return line_; }  ///< 1-based; 0 when unknown.

private:
    std::string path_;
    int line_;
};

/// The message of `e` without the "parse: " prefix ParseError adds —
/// for wrapping a low-level parse failure into a higher-level one
/// (FileParseError) without stacking prefixes.
inline std::string error_detail(const std::exception& e) {
    std::string msg = e.what();
    if (msg.rfind("parse: ", 0) == 0) msg.erase(0, 7);
    return msg;
}

}  // namespace ff::common
