// Retry with exponential backoff and deterministic jitter.
//
// The coordinator and its workers (src/coord) both need "try again, later,
// but not all at once" in several places: re-issuing an expired shard lease,
// reconnecting a worker to a restarted coordinator, polling for work when
// the queue is momentarily empty.  This header is the one shared policy:
// delays grow geometrically from `base_ms` up to `max_ms`, and an optional
// jitter fraction spreads simultaneous retries apart.  Jitter is drawn from
// a caller-owned common::Rng, so a fixed seed yields a fixed delay sequence
// — fault-injection tests can predict every sleep.
#pragma once

/// \file
/// BackoffPolicy (exponential delays + deterministic jitter) and
/// retry_with_backoff.

#include <cstdint>
#include <functional>

#include "common/rng.h"

namespace ff::common {

/// Exponential-backoff schedule.  Attempt 0 waits `base_ms`, attempt k waits
/// `base_ms * factor^k`, capped at `max_ms`; the result is then spread by
/// ±`jitter` (a fraction of the delay) using the caller's Rng.  `max_ms` is
/// a hard ceiling — it binds after jitter as well.
struct BackoffPolicy {
    double base_ms = 100.0;  ///< Delay before the first retry.
    double factor = 2.0;     ///< Geometric growth per attempt.
    double max_ms = 5000.0;  ///< Delay ceiling.
    double jitter = 0.2;     ///< ± fraction of the delay; 0 disables jitter.

    /// Delay in milliseconds before retry `attempt` (0-based).  Pure in
    /// (policy, attempt, rng state): a fixed-seed Rng reproduces the exact
    /// sequence.
    double delay_ms(int attempt, Rng& rng) const;
};

/// Calls `fn` up to `max_attempts` times, invoking `sleep_ms` with the
/// policy's delay between failures.  Returns true as soon as `fn` does;
/// false when every attempt failed.  The sleeper is injected so tests (and
/// event loops) can wait without blocking a real clock.
bool retry_with_backoff(int max_attempts, const BackoffPolicy& policy, Rng& rng,
                        const std::function<bool()>& fn,
                        const std::function<void(double)>& sleep_ms);

}  // namespace ff::common
