// CRC32C (Castagnoli) — the one checksum shared by the coordinator's wire
// frames and the shard record streams.
//
// Chosen over CRC32 (ISO-HDLC) for its better error-detection properties on
// short messages and because it is the checksum hardware accelerates
// everywhere (SSE4.2 crc32, ARMv8 CRC) — this software table implementation
// keeps the build dependency-free while staying drop-in compatible with any
// accelerated producer.  The empty-message CRC is 0, and values chain:
// crc32c(a + b) == crc32c(b, crc32c(a)), which the record-stream trailer
// exploits to keep a rolling digest across resumed writers.
#pragma once

/// \file
/// crc32c(): software CRC32C over a byte range, plus hex helpers.

#include <cstdint>
#include <string>
#include <string_view>

namespace ff::common {

/// CRC32C of `data`, seeded with a previous crc32c value (0 for a fresh
/// stream).  Chaining: crc32c(b, crc32c(a)) == crc32c(ab).
std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0);

/// Fixed-width lowercase hex of a CRC value ("00000000".."ffffffff") — the
/// wire/file representation, always exactly 8 characters.
std::string crc32c_hex(std::uint32_t crc);

/// Inverse of crc32c_hex.  Returns false when `hex` is not exactly 8
/// lowercase/uppercase hex digits.
bool crc32c_parse(std::string_view hex, std::uint32_t& out);

}  // namespace ff::common
