// Deterministic pseudo-random number generation.
//
// Fuzzing campaigns must be exactly reproducible from a single 64-bit seed:
// a failing test case is re-derivable from (seed, trial index).  We use
// xoshiro256** seeded via SplitMix64, the same construction AFL-style fuzzers
// favour for speed and statistical quality.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace ff::common {

/// SplitMix64 — used for seeding and cheap hashing of names to values.
inline std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// RNG seed of one fuzzing trial: a pure function of (instance seed, trial
/// index), independent of any loop or thread execution order.  This is what
/// makes parallel trial execution bit-reproducible — a trial draws the same
/// input stream whether it runs first on thread 7 or last on thread 0 — and
/// what lets a failing test case be re-derived from (seed, trial index)
/// alone.
inline std::uint64_t trial_seed(std::uint64_t instance_seed, std::uint64_t trial_index) {
    return splitmix64(instance_seed) ^ splitmix64(trial_index + 1);
}

/// xoshiro256** PRNG.  Satisfies UniformRandomBitGenerator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        std::uint64_t x = seed;
        for (auto& word : state_) {
            x = splitmix64(x);
            word = x;
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

    result_type operator()() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [lo, hi] (inclusive).  Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Uniform double in [lo, hi).
    double uniform_double(double lo, double hi);

    /// True with probability p.
    bool chance(double p) { return uniform_double(0.0, 1.0) < p; }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
    std::array<std::uint64_t, 4> state_{};
};

}  // namespace ff::common
