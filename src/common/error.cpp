#include "common/error.h"

// All error classes are header-only; this translation unit anchors the vtable
// emission for the base class so the library has a single definition site.
namespace ff::common {
namespace {
// Anchor.
[[maybe_unused]] const Error* anchor = nullptr;
}  // namespace
}  // namespace ff::common
