// Minimal self-contained JSON value, writer and parser.
//
// Used for SDFG serialization and for the minimal-reproducer test cases the
// fuzzer emits (Sec. 5.1: "fully reproducible, minimal test case including
// inputs").  No external dependencies; supports the JSON subset we emit
// (objects, arrays, strings, doubles, 64-bit integers, booleans, null).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.h"

namespace ff::common {

/// Syntax error from Json::parse carrying the 1-based source position, so
/// file-level readers can turn it into a `file, line N` diagnostic
/// (FileParseError) instead of a bare parse throw.
class JsonParseError : public ParseError {
public:
    JsonParseError(int line, int column, const std::string& detail)
        : ParseError("json: line " + std::to_string(line) + ", column " +
                     std::to_string(column) + ": " + detail),
          line_(line),
          column_(column),
          detail_(detail) {}
    int line() const { return line_; }
    int column() const { return column_; }
    const std::string& detail() const { return detail_; }

private:
    int line_;
    int column_;
    std::string detail_;
};

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// A JSON value with value semantics.
class Json {
public:
    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(std::int64_t i) : value_(i) {}
    Json(int i) : value_(static_cast<std::int64_t>(i)) {}
    Json(std::size_t i) : value_(static_cast<std::int64_t>(i)) {}
    Json(double d) : value_(d) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(JsonArray a) : value_(std::move(a)) {}
    Json(JsonObject o) : value_(std::move(o)) {}

    static Json array() { return Json(JsonArray{}); }
    static Json object() { return Json(JsonObject{}); }

    bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
    bool is_bool() const { return std::holds_alternative<bool>(value_); }
    bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
    bool is_double() const { return std::holds_alternative<double>(value_); }
    bool is_number() const { return is_int() || is_double(); }
    bool is_string() const { return std::holds_alternative<std::string>(value_); }
    bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
    bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

    bool as_bool() const { return std::get<bool>(value_); }
    std::int64_t as_int() const;
    double as_double() const;
    const std::string& as_string() const { return std::get<std::string>(value_); }
    const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
    JsonArray& as_array() { return std::get<JsonArray>(value_); }
    const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
    JsonObject& as_object() { return std::get<JsonObject>(value_); }

    /// Object member access; inserts null when missing (non-const).
    Json& operator[](const std::string& key);
    /// Const object member access; throws ParseError when missing.
    const Json& at(const std::string& key) const;
    bool contains(const std::string& key) const;

    void push_back(Json v) { as_array().push_back(std::move(v)); }

    /// Serialize.  `indent < 0` means compact single-line output.
    std::string dump(int indent = -1) const;

    /// Parse from text; throws ParseError on malformed input.
    static Json parse(std::string_view text);

    /// Reads and parses a whole file; throws Error when the file cannot be
    /// read, ParseError on malformed JSON.  The one loader path for SDFG
    /// files, shard manifests and reproducer test cases.
    static Json parse_file(const std::string& path);

private:
    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, JsonArray, JsonObject>
        value_;
};

/// Human name of a Json value's runtime type ("object", "integer", ...).
const char* json_type_name(const Json& j);

/// Typed field accessors with self-describing errors.  `json_int(j, "seed")`
/// throws ParseError("key 'seed': expected an integer, got a string")
/// instead of a bare variant access failure — every wire-format reader
/// (shard manifests, record streams) goes through these so malformed input
/// names the offending field and the expected shape.
std::int64_t json_int(const Json& j, const std::string& key);
double json_double(const Json& j, const std::string& key);
bool json_bool(const Json& j, const std::string& key);
const std::string& json_string(const Json& j, const std::string& key);
const JsonObject& json_object_field(const Json& j, const std::string& key);
const JsonArray& json_array_field(const Json& j, const std::string& key);

}  // namespace ff::common
