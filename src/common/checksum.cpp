#include "common/checksum.h"

#include <array>

namespace ff::common {

namespace {

// Reflected CRC32C table for the Castagnoli polynomial 0x1EDC6F41
// (reflected form 0x82F63B78), built once at first use.
const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t crc = i;
            for (int bit = 0; bit < 8; ++bit) {
                crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
            }
            t[i] = crc;
        }
        return t;
    }();
    return table;
}

}  // namespace

std::uint32_t crc32c(std::string_view data, std::uint32_t seed) {
    const auto& table = crc_table();
    std::uint32_t crc = ~seed;
    for (unsigned char byte : data) {
        crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
    }
    return ~crc;
}

std::string crc32c_hex(std::uint32_t crc) {
    static const char* digits = "0123456789abcdef";
    std::string out(8, '0');
    for (int i = 7; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[crc & 0xFu];
        crc >>= 4;
    }
    return out;
}

bool crc32c_parse(std::string_view hex, std::uint32_t& out) {
    if (hex.size() != 8) return false;
    std::uint32_t value = 0;
    for (char c : hex) {
        int digit;
        if (c >= '0' && c <= '9') {
            digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
        } else {
            return false;
        }
        value = (value << 4) | static_cast<std::uint32_t>(digit);
    }
    out = value;
    return true;
}

}  // namespace ff::common
