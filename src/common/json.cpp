#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace ff::common {

std::int64_t Json::as_int() const {
    if (is_int()) return std::get<std::int64_t>(value_);
    if (is_double()) return static_cast<std::int64_t>(std::get<double>(value_));
    throw ParseError("json value is not a number");
}

double Json::as_double() const {
    if (is_double()) return std::get<double>(value_);
    if (is_int()) return static_cast<double>(std::get<std::int64_t>(value_));
    throw ParseError("json value is not a number");
}

Json& Json::operator[](const std::string& key) {
    if (is_null()) value_ = JsonObject{};
    return as_object()[key];
}

const Json& Json::at(const std::string& key) const {
    const auto& obj = as_object();
    auto it = obj.find(key);
    if (it == obj.end()) throw ParseError("missing json key: " + key);
    return it->second;
}

bool Json::contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
}

namespace {

void write_escaped(std::ostringstream& out, const std::string& s) {
    out << '"';
    for (char c : s) {
        switch (c) {
            case '"': out << "\\\""; break;
            case '\\': out << "\\\\"; break;
            case '\n': out << "\\n"; break;
            case '\t': out << "\\t"; break;
            case '\r': out << "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out << buf;
                } else {
                    out << c;
                }
        }
    }
    out << '"';
}

void write_double(std::ostringstream& out, double d) {
    if (std::isnan(d)) {
        out << "\"__nan__\"";  // JSON has no NaN literal; round-trips via parser hook.
        return;
    }
    if (std::isinf(d)) {
        out << (d > 0 ? "\"__inf__\"" : "\"__-inf__\"");
        return;
    }
    if (d == 0.0 && std::signbit(d)) {
        // %.17g prints "-0", which the parser reads back as the *integer*
        // zero, dropping the sign; force a double-typed literal so negative
        // zero survives a round trip (the shard wire format relies on
        // serialization being lossless).
        out << "-0.0";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out << buf;
}

}  // namespace

std::string Json::dump(int indent) const {
    std::ostringstream out;
    // Recursive lambda over the variant.
    auto dump_rec = [&](auto&& self, const Json& v, int depth) -> void {
        const std::string pad = indent >= 0 ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ') : "";
        const std::string close_pad = indent >= 0 ? std::string(static_cast<std::size_t>(indent) * depth, ' ') : "";
        const char* nl = indent >= 0 ? "\n" : "";
        if (v.is_null()) {
            out << "null";
        } else if (v.is_bool()) {
            out << (v.as_bool() ? "true" : "false");
        } else if (v.is_int()) {
            out << v.as_int();
        } else if (v.is_double()) {
            write_double(out, v.as_double());
        } else if (v.is_string()) {
            write_escaped(out, v.as_string());
        } else if (v.is_array()) {
            const auto& arr = v.as_array();
            if (arr.empty()) { out << "[]"; return; }
            out << '[' << nl;
            for (std::size_t i = 0; i < arr.size(); ++i) {
                out << pad;
                self(self, arr[i], depth + 1);
                if (i + 1 < arr.size()) out << ',';
                out << nl;
            }
            out << close_pad << ']';
        } else {
            const auto& obj = v.as_object();
            if (obj.empty()) { out << "{}"; return; }
            out << '{' << nl;
            std::size_t i = 0;
            for (const auto& [key, val] : obj) {
                out << pad;
                write_escaped(out, key);
                out << (indent >= 0 ? ": " : ":");
                self(self, val, depth + 1);
                if (++i < obj.size()) out << ',';
                out << nl;
            }
            out << close_pad << '}';
        }
    };
    dump_rec(dump_rec, *this, 0);
    return out.str();
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse() {
        Json v = value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& msg) const {
        // 1-based line/column of the failure point, so file-level readers
        // can report `file, line N` instead of a byte offset.
        int line = 1, column = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
        }
        throw JsonParseError(line, column, msg);
    }

    void skip_ws() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    Json value() {
        skip_ws();
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return string_value();
            case 't': literal("true"); return Json(true);
            case 'f': literal("false"); return Json(false);
            case 'n': literal("null"); return Json(nullptr);
            default: return number();
        }
    }

    void literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) != lit) fail("bad literal");
        pos_ += lit.size();
    }

    Json string_value() {
        std::string s = raw_string();
        // Round-trip hooks for non-finite doubles (see write_double).
        if (s == "__nan__") return Json(std::nan(""));
        if (s == "__inf__") return Json(HUGE_VAL);
        if (s == "__-inf__") return Json(-HUGE_VAL);
        return Json(std::move(s));
    }

    std::string raw_string() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"') break;
            if (c == '\\') {
                if (pos_ >= text_.size()) fail("bad escape");
                char e = text_[pos_++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'u': {
                        if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            char h = text_[pos_++];
                            code <<= 4;
                            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
                            else fail("bad hex digit");
                        }
                        // Only BMP code points are emitted by our writer; encode UTF-8.
                        if (code < 0x80) {
                            out += static_cast<char>(code);
                        } else if (code < 0x800) {
                            out += static_cast<char>(0xC0 | (code >> 6));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        } else {
                            out += static_cast<char>(0xE0 | (code >> 12));
                            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                            out += static_cast<char>(0x80 | (code & 0x3F));
                        }
                        break;
                    }
                    default: fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return out;
    }

    Json number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        const std::string_view tok = text_.substr(start, pos_ - start);
        if (tok.empty()) fail("expected number");
        const bool is_float = tok.find_first_of(".eE") != std::string_view::npos;
        if (!is_float) {
            std::int64_t i = 0;
            auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), i);
            if (ec == std::errc() && ptr == tok.data() + tok.size()) return Json(i);
        }
        double d = 0.0;
        auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
        if (ec != std::errc() || ptr != tok.data() + tok.size()) fail("bad number");
        return Json(d);
    }

    Json array() {
        expect('[');
        JsonArray arr;
        skip_ws();
        if (peek() == ']') { ++pos_; return Json(std::move(arr)); }
        while (true) {
            arr.push_back(value());
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            expect(']');
            break;
        }
        return Json(std::move(arr));
    }

    Json object() {
        expect('{');
        JsonObject obj;
        skip_ws();
        if (peek() == '}') { ++pos_; return Json(std::move(obj)); }
        while (true) {
            skip_ws();
            std::string key = raw_string();
            skip_ws();
            expect(':');
            obj[std::move(key)] = value();
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            expect('}');
            break;
        }
        return Json(std::move(obj));
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse(); }

Json Json::parse_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) throw Error("read failed on " + path);
    try {
        return parse(text.str());
    } catch (const JsonParseError& e) {
        throw FileParseError(path, e.line(),
                             e.detail() + " (column " + std::to_string(e.column()) + ")");
    }
}

const char* json_type_name(const Json& j) {
    if (j.is_null()) return "null";
    if (j.is_bool()) return "a boolean";
    if (j.is_int()) return "an integer";
    if (j.is_double()) return "a number";
    if (j.is_string()) return "a string";
    if (j.is_array()) return "an array";
    return "an object";
}

namespace {

const Json& field_or_throw(const Json& j, const std::string& key, const char* expected) {
    if (!j.is_object())
        throw ParseError("expected an object carrying key '" + key + "', got " +
                         json_type_name(j));
    const auto& obj = j.as_object();
    auto it = obj.find(key);
    if (it == obj.end())
        throw ParseError("missing key '" + key + "' (expected " + expected + ")");
    return it->second;
}

[[noreturn]] void wrong_type(const std::string& key, const char* expected, const Json& got) {
    throw ParseError("key '" + key + "': expected " + expected + ", got " + json_type_name(got));
}

}  // namespace

std::int64_t json_int(const Json& j, const std::string& key) {
    const Json& v = field_or_throw(j, key, "an integer");
    if (!v.is_number()) wrong_type(key, "an integer", v);
    return v.as_int();
}

double json_double(const Json& j, const std::string& key) {
    const Json& v = field_or_throw(j, key, "a number");
    if (!v.is_number()) wrong_type(key, "a number", v);
    return v.as_double();
}

bool json_bool(const Json& j, const std::string& key) {
    const Json& v = field_or_throw(j, key, "a boolean");
    if (!v.is_bool()) wrong_type(key, "a boolean", v);
    return v.as_bool();
}

const std::string& json_string(const Json& j, const std::string& key) {
    const Json& v = field_or_throw(j, key, "a string");
    if (!v.is_string()) wrong_type(key, "a string", v);
    return v.as_string();
}

const JsonObject& json_object_field(const Json& j, const std::string& key) {
    const Json& v = field_or_throw(j, key, "an object");
    if (!v.is_object()) wrong_type(key, "an object", v);
    return v.as_object();
}

const JsonArray& json_array_field(const Json& j, const std::string& key) {
    const Json& v = field_or_throw(j, key, "an array");
    if (!v.is_array()) wrong_type(key, "an array", v);
    return v.as_array();
}

}  // namespace ff::common
