#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace ff::common {

double BackoffPolicy::delay_ms(int attempt, Rng& rng) const {
    const double exponent = std::max(attempt, 0);
    double delay = base_ms * std::pow(std::max(factor, 1.0), exponent);
    delay = std::min(delay, max_ms);
    if (jitter > 0.0) {
        const double spread = std::clamp(jitter, 0.0, 1.0);
        delay *= rng.uniform_double(1.0 - spread, 1.0 + spread);
    }
    // max_ms is a hard ceiling, jitter included: upward jitter on a
    // capped delay must not overshoot it, or a fleet's worst-case
    // reconnect stretches past what the grace windows were sized for.
    return std::clamp(delay, 0.0, max_ms);
}

bool retry_with_backoff(int max_attempts, const BackoffPolicy& policy, Rng& rng,
                        const std::function<bool()>& fn,
                        const std::function<void(double)>& sleep_ms) {
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        if (fn()) return true;
        if (attempt + 1 < max_attempts) sleep_ms(policy.delay_ms(attempt, rng));
    }
    return false;
}

}  // namespace ff::common
