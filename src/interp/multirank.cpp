#include "interp/multirank.h"

#include "common/error.h"

namespace ff::interp {

using ir::CommKind;
using ir::NodeId;
using ir::NodeKind;

MultiRankInterpreter::MultiRankInterpreter(int num_ranks, ExecConfig config)
    : num_ranks_(num_ranks), interp_(config) {
    if (num_ranks < 1) throw common::Error("multirank: need >= 1 rank");
}

MultiRankResult MultiRankInterpreter::run(const ir::SDFG& sdfg,
                                          std::vector<Context>& rank_contexts) {
    MultiRankResult result;
    // Contexts may have been destroyed and recreated at recycled addresses
    // between runs; this runtime drives execute_node() directly, so drop the
    // interpreter's per-execution buffer cache explicitly.
    interp_.invalidate_execution_cache();
    try {
        if (rank_contexts.size() != static_cast<std::size_t>(num_ranks_))
            throw common::Error("multirank: context count != rank count");
        if (sdfg.states().size() != 1)
            throw common::Error("multirank: only single-state SDFGs are supported");

        for (int r = 0; r < num_ranks_; ++r) {
            rank_contexts[static_cast<std::size_t>(r)].symbols["rank"] = r;
            rank_contexts[static_cast<std::size_t>(r)].symbols["num_ranks"] = num_ranks_;
        }

        const ir::State& state = sdfg.state(sdfg.start_state());
        const auto topo = state.graph().topological_order();
        if (!topo) throw common::ValidationError("multirank: dataflow cycle");

        // Node-major execution: every producer finishes on all ranks before
        // a collective reads; this is the lockstep SPMD schedule.
        for (NodeId nid : *topo) {
            if (state.parent_scope_of(nid) != graph::kInvalidNode) continue;
            const ir::DataflowNode& node = state.graph().node(nid);
            if (node.kind == NodeKind::MapExit) continue;
            if (node.kind == NodeKind::Comm) {
                execute_comm(sdfg, state, nid, rank_contexts);
                continue;
            }
            for (Context& ctx : rank_contexts) interp_.execute_node(sdfg, state, nid, ctx);
        }
    } catch (const common::HangError& e) {
        result.status = ExecStatus::Hang;
        result.message = e.what();
    } catch (const std::exception& e) {
        result.status = ExecStatus::Crash;
        result.message = e.what();
    }
    return result;
}

void MultiRankInterpreter::execute_comm(const ir::SDFG& sdfg, const ir::State& state, NodeId nid,
                                        std::vector<Context>& rank_contexts) {
    const ir::DataflowNode& node = state.graph().node(nid);
    const auto& g = state.graph();
    const ir::Memlet* in_memlet = nullptr;
    const ir::Memlet* out_memlet = nullptr;
    for (graph::EdgeId eid : g.in_edges(nid))
        if (g.edge(eid).data.dst_conn == "in") in_memlet = &g.edge(eid).data.memlet;
    for (graph::EdgeId eid : g.out_edges(nid))
        if (g.edge(eid).data.src_conn == "out") out_memlet = &g.edge(eid).data.memlet;
    if (!in_memlet || !out_memlet)
        throw common::ValidationError("comm node '" + node.label + "' missing connectors");

    // Gather each rank's contribution (memlets may reference `rank`) into
    // the reusable per-rank staging buffers.
    if (contributions_.size() < rank_contexts.size()) contributions_.resize(rank_contexts.size());
    std::vector<std::vector<Value>>& contributions = contributions_;
    for (std::size_t r = 0; r < rank_contexts.size(); ++r)
        interp_.gather_into(sdfg, rank_contexts[r], *in_memlet, contributions[r]);

    switch (node.comm) {
        case CommKind::Broadcast: {
            if (node.comm_root < 0 || node.comm_root >= num_ranks_)
                throw common::Error("broadcast: invalid root rank");
            const auto& payload = contributions[static_cast<std::size_t>(node.comm_root)];
            for (Context& ctx : rank_contexts) interp_.scatter(sdfg, ctx, *out_memlet, payload);
            break;
        }
        case CommKind::Allreduce: {
            std::vector<Value>& sum = reduced_;
            sum = contributions[0];
            for (std::size_t r = 1; r < contributions.size(); ++r) {
                if (contributions[r].size() != sum.size())
                    throw common::Error("allreduce: contribution size mismatch");
                for (std::size_t i = 0; i < sum.size(); ++i)
                    sum[i] = Value::from_double(sum[i].as_double() +
                                                contributions[r][i].as_double());
            }
            for (Context& ctx : rank_contexts) interp_.scatter(sdfg, ctx, *out_memlet, sum);
            break;
        }
        case CommKind::Allgather: {
            std::vector<Value>& gathered = reduced_;
            gathered.clear();
            for (const auto& chunk : contributions)
                gathered.insert(gathered.end(), chunk.begin(), chunk.end());
            for (Context& ctx : rank_contexts) interp_.scatter(sdfg, ctx, *out_memlet, gathered);
            break;
        }
    }
}

}  // namespace ff::interp
