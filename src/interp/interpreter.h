// SDFG interpreter.
//
// Replaces DaCe's code generation + native execution in the original
// implementation: both sides of every differential test run under this
// interpreter, so relative measurements (cutout vs whole program, trials to
// failure) carry the same meaning as in the paper.
//
// Execution model:
//  * The state machine starts at the start state; after a state's dataflow
//    graph executes, the first outgoing interstate edge whose condition
//    evaluates true is taken and its assignments applied (simultaneously).
//    No matching edge terminates the program.  More than
//    `max_state_transitions` transitions is reported as a hang (Sec. 5.1).
//  * Within a state, top-level nodes execute in topological order.  Map
//    scopes iterate their (possibly negative-step) ranges; `Sequential`
//    order is the definition of program semantics, other schedules are
//    declarative hints.
//  * Every container access is bounds-checked; violations and unbound
//    symbols surface as a Crash result rather than undefined behaviour.
//  * Containers are allocated lazily on first access: host transients are
//    zero-filled, Device containers are filled with deterministic garbage.
//
// Compiled execution path (the fuzzing hot path):
//
// Fuzz throughput is bounded by the innermost loop — one tasklet execution
// per map point, on both sides of every differential trial.  The interpreter
// therefore compiles each state once into a StatePlan: topological order and
// scope structure, plus, per tasklet node, a TaskletPlan binding every
// incident memlet to a fixed slot range of the tasklet's compiled bytecode
// program (see tasklet_lang.h) together with precomputed subset shape
// information (single-point flag, constant element counts).  Execution then
// runs map points against a reusable flat scratch arena (slot + register
// Value arrays, index/range buffers, per-state Buffer pointer cache) —
// no ConnectorEnv map, no per-point gather/scatter vectors, no heap
// allocation per map point for scalar tasklets.  The legacy tree-walking
// path is kept bit-for-bit intact behind ExecConfig::use_compiled_tasklets
// = false as the reference for differential testing and benchmarking.
//
// Interned symbols (no hot-path string lookups):
//
// Plans lower every symbol reference — map parameters, map range bounds,
// memlet index expressions — to dense sym::SymId slots of the plan cache's
// SymbolTable at build time (sym::CompiledExpr).  Execution mirrors the
// symbols a plan references from the string-keyed Context bindings into a
// flat i64 vector once per state execution; from then on map-parameter
// resolution in the scope odometer is an array store and every index
// expression evaluates against array loads.  Scopes whose subtree consists
// entirely of compiled-engine tasklets ("pure" scopes) never touch the
// string-keyed bindings at all; scopes containing library/comm/access/
// reference-engine nodes additionally maintain the string bindings per
// iteration, preserving the legacy semantics for those nodes.
//
// Specialization tiers (plan-level loop specialization):
//
// On top of the compiled path, build_plan classifies every map scope.  A
// scope whose children are all compiled tasklets, whose range bounds are
// evaluable at scope entry (they never reference the scope's own
// parameters), and whose memlet indices are affine in the scope parameters
// with constant coefficients carries a ScopeKernel: per-access flat-stride
// advances replace the odometer's per-point index-expression evaluation and
// bounds-checked flat_index calls — advancing a point is one add per
// connector, and the whole iteration footprint is validated once per launch
// (a launch that could fault falls back to the generic odometer, which owns
// partial-effect and error-ordering semantics).  Independently, each tasklet
// selects a *dtype signature* (TaskletPlan::sig): a program admitting the
// untagged double VM (TaskletProgram::has_f64_variant) whose input
// connectors all bind scalar float-family (F64/F32) containers runs tagless
// on raw doubles, and a program admitting the int twin (has_i64_variant)
// whose inputs all bind int-family (I64/I32) containers runs on raw int64s;
// output containers may be any dtype — the store-side conversions mirror the
// tagged VM's Buffer::store casts exactly.  Inside a kernel an untagged
// tasklet's inner loop runs over raw Buffer storage with per-lane dtype
// conversion.  On top of that sits the *segment* tier: a kernel whose
// tasklets are all untagged and straight-line (no branches, no traps) can
// run its whole stride-1 innermost extent per dispatch through the vertical
// batch VMs (TaskletProgram::execute_*_batch) — auto-vectorizable column
// loops instead of per-point dispatch.  Each launch checks the concrete lane
// windows for unsafe aliasing (vertical execution reorders loads/stores
// across points) and silently degrades to the per-point kernel loop when
// segments could overlap.  Classification lives in the shared plan (keyed,
// like everything else, on plan uid + mutation epoch); ExecConfig::specialize
// and ExecConfig::batch_segments select what execution uses, and results are
// byte-identical under every toggle combination.
//
// Plan sharing across threads:
//
// All derived artifacts live in a PlanCache (see plan_cache.h) keyed by
// (SDFG plan uid, mutation epoch, state).  Several interpreters — e.g. one
// per worker thread of the parallel fuzzer — can share one cache over the
// same immutable SDFG pair; per-interpreter scratch keeps execution state
// thread-private.  Applying a transformation bumps the SDFG's mutation
// epoch, so a warm interpreter transparently rebuilds plans for the
// transformed graph instead of requiring a fresh instance.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "interp/buffer.h"
#include "interp/plan_cache.h"
#include "ir/sdfg.h"
#include "symbolic/interned.h"

namespace ff::feedback {
class CoverageMap;
}

namespace ff::interp {

struct ExecConfig {
    std::int64_t max_state_transitions = 100000;
    /// Map-point fuel: total points executed across all map scopes of one
    /// run() before ExecStatus::Resource (0 = unlimited).  Checked in the
    /// generic odometer and pre-charged per launch by the flat-stride
    /// kernels — exhaustion is a pure function of (program, inputs, budget),
    /// so results stay byte-identical across execution tiers.
    std::int64_t max_points = 0;
    /// Per-run() allocation budget over lazily created buffers, in bytes
    /// (0 = unlimited).  Caller-provided input buffers are never charged.
    std::int64_t max_alloc_bytes = 0;
    std::uint64_t device_garbage_seed = 0xD00DULL;
    /// Execute tasklets via the bytecode VM against precomputed memlet
    /// access plans (the fast path).  false selects the reference AST
    /// engine with per-point ConnectorEnv construction — kept selectable
    /// for differential testing and the hot-path benchmark.
    bool use_compiled_tasklets = true;
    /// Use the plan's specialization tiers: flat-stride map kernels and the
    /// untagged f64/i64 tasklet VMs (only meaningful with compiled
    /// tasklets).  Plans always carry the classification; this selects
    /// whether execution uses it.  Off reproduces the generic compiled path
    /// — results are byte-identical either way (the determinism contract),
    /// so this knob exists for benchmarking and differential self-checks.
    bool specialize = true;
    /// Run segment-eligible kernels through the batched vertical VMs (whole
    /// stride-1 innermost extent per dispatch) instead of the per-point
    /// kernel loop.  Only meaningful with specialize; results are
    /// byte-identical either way, so this knob exists for benchmarking and
    /// differential self-checks.
    bool batch_segments = true;
    /// Record def-use pair coverage (see feedback/coverage.h) into the map
    /// installed via Interpreter::set_coverage.  Marking is charged at
    /// scope-launch granularity from tier-invariant point counts, so the
    /// resulting bitmap is byte-identical across every execution tier and
    /// toggle combination — enabling this never perturbs results, it only
    /// adds the (cheap) marking stores.
    bool coverage = false;
};

enum class ExecStatus {
    Ok,
    Crash,
    Hang,
    /// A deterministic resource budget (ExecConfig::max_points /
    /// max_alloc_bytes) was exhausted.
    Resource,
};

struct ExecResult {
    ExecStatus status = ExecStatus::Ok;
    std::string message;
    std::int64_t state_transitions = 0;
    /// Cost counters of this execution (maintained for the resource fuel,
    /// surfaced as the seed of performance-differential verdicts).  Totals
    /// are byte-identical across execution tiers when status == Ok; on error
    /// paths the tiers may detect exhaustion at different granularity, so
    /// consumers must only compare them for Ok results.
    std::int64_t points = 0;        ///< Map points executed.
    std::int64_t instructions = 0;  ///< Tasklet dispatches executed.

    bool ok() const { return status == ExecStatus::Ok; }
};

/// Runtime state of one program execution: symbol values + live buffers.
struct Context {
    sym::Bindings symbols;
    std::map<std::string, Buffer> buffers;

    bool has_buffer(const std::string& name) const { return buffers.count(name) > 0; }
};

/// One dimension of a subset, lowered to interned-symbol programs.
struct RangePlan {
    sym::CompiledExpr begin, end, step;
};

/// One memlet of a planned tasklet, resolved to a slot range of its compiled
/// program.  Subset shape facts that do not depend on symbol values are
/// precomputed here so the per-point work is index-expression evaluation
/// plus bounds-checked loads/stores.
struct AccessPlan {
    const ir::Memlet* memlet = nullptr;
    std::string conn;
    int slot_base = -1;       ///< -1: gathered for side effects only.
    int width = 0;            ///< Lanes backing the slot range.
    bool single_point = false;  ///< Every dimension is a single index.
    std::int64_t const_volume = -1;  ///< Total points if constant, else -1.
    int cache_index = -1;     ///< Slot in the per-state Buffer* cache.
    bool invalid = false;     ///< Outputs only: connector never produced.
    /// Passthrough staging (connector untouched by the program): the input
    /// gathers its *pre-execution* snapshot into this scratch pool slot and
    /// the forwarding output scatters from it — matching the reference
    /// engine, which binds connector values before the program runs.
    int passthrough_pool = -1;
    /// Subset index expressions lowered to interned-slot programs; evaluated
    /// against the flat bindings on the compiled path (no string lookups).
    std::vector<RangePlan> dims;
};

/// Dtype signature of a planned tasklet: which VM executes it under
/// ExecConfig::specialize.  Untagged signatures require the program to admit
/// the corresponding engine (TaskletProgram::has_f64_variant /
/// has_i64_variant), every *input* connector to bind a single-point subset
/// of a matching-family container (float family F64/F32 for F64, int family
/// I64/I32 for I64), and every output connector a single-point subset of any
/// dtype — output conversions mirror the tagged VM's Buffer::store casts
/// exactly, so results are byte-identical.
enum class VMSig : std::uint8_t {
    Tagged,  ///< Generic tagged-Value bytecode VM (always correct).
    F64,     ///< Untagged double VM (float-family inputs).
    I64,     ///< Untagged int64 VM (int-family inputs).
};

/// Compiled execution recipe for one tasklet node.
struct TaskletPlan {
    TaskletProgramPtr prog;
    std::string label;
    std::vector<AccessPlan> inputs;   // in-edge order
    std::vector<AccessPlan> outputs;  // out-edge order
    /// Declared-input validation, in the reference engine's check order
    /// (reads() name order) so both engines name the same connector when
    /// several are missing/undersized.  input_index -1 = bound by no edge;
    /// raised on execution (a tasklet inside an empty map never runs).
    struct InputCheck {
        std::string conn;
        int input_index = -1;
        int width = 0;
    };
    std::vector<InputCheck> input_checks;
    /// Trap connector bound by an edge: the static unbound-lane analysis
    /// does not apply, run this node on the reference engine.
    bool use_reference = false;
    /// Dtype signature selected at plan time (see VMSig).  Untagged
    /// signatures are gated at execution time by ExecConfig::specialize.
    VMSig sig = VMSig::Tagged;
    /// Def-use pair id bases of this tasklet's accesses, inputs then outputs
    /// (the CovAtlas enumeration order matches inputs/outputs exactly).
    /// Access j's class-c pair is cov_bases[j] + c.  Always populated —
    /// plans are config-independent; ExecConfig::coverage gates marking.
    std::vector<std::uint32_t> cov_bases;
};

/// Compiled execution recipe for one map scope.
struct ScopePlan {
    std::string label;                       ///< For diagnostics (step 0).
    std::vector<sym::SymId> params;          ///< Interned iteration variables.
    std::vector<const std::string*> param_names;  ///< Into the MapEntry node.
    std::vector<RangePlan> ranges;           ///< One per param.
    std::vector<ir::NodeId> children;        ///< Ordered nodes inside the scope.
    /// Subtree contains only compiled-engine tasklets and pure nested
    /// scopes: iteration binds parameters in the flat bindings only, never
    /// touching the string-keyed Context map.
    bool pure = false;
    /// Index into StatePlan::kernels when this scope classified as a
    /// flat-stride kernel; -1 otherwise.
    int kernel = -1;
    /// Concatenated cov_bases of this scope's *direct* tasklet children:
    /// after a successful launch the interpreter marks base +
    /// region_class(points this launch iterated) for each — one pass over a
    /// flat vector, no per-point work (see feedback/coverage.h).  Nested
    /// scopes mark their own tasklets per inner launch.
    std::vector<std::uint32_t> cov_bases;
};

/// One memlet of a flat-stride kernel: the affine decomposition of its
/// (single-point) subset over the scope parameters.  index_d = base_d +
/// sum_k coeffs[d * params + k] * param_k, where base_d is obtained at
/// launch time by evaluating the lowered index programs at the ranges'
/// begin point.
struct KernelAccess {
    int tasklet = 0;      ///< Index into ScopeKernel::tasklets.
    bool output = false;  ///< Input or output of that tasklet.
    int index = 0;        ///< Position among the tasklet's inputs/outputs.
    std::vector<std::int64_t> coeffs;  ///< dims x params, row-major.
};

/// Flat-stride specialization of one map scope: every child is a compiled
/// tasklet, every range bound is evaluable at scope entry, and every memlet
/// index is affine in the scope parameters with constant coefficients —
/// per-point addressing collapses to one precomputed flat-offset add per
/// connector.  Classified once at plan time; every launch still validates
/// ranks and the concrete iteration footprint, handing scopes that could
/// fault back to the generic odometer (which owns partial-effect and
/// error-ordering semantics).
struct ScopeKernel {
    std::vector<int> tasklets;           ///< tasklet_plans indices, child order.
    std::vector<KernelAccess> accesses;  ///< Grouped by tasklet, inputs first.
    /// Segment-eligible: every tasklet selected an untagged signature and is
    /// straight-line, so the innermost extent can execute through the batch
    /// VMs.  Each launch still checks the concrete lane windows for unsafe
    /// aliasing before batching (see execute_scope_kernel).
    bool segment_ok = false;
};

/// Precomputed execution structure of one state: topological order, scope
/// plans (interned params + lowered range bounds + ordered children), and
/// per-tasklet access plans.  Built once per (state, mutation epoch), cached
/// in the PlanCache and shared across interpreter threads — nested map
/// scopes execute O(iterations) times and must not re-derive any of this
/// per point.
struct StatePlan {
    std::vector<ir::NodeId> top_level;  // ordered, no MapExit
    std::vector<TaskletPlan> tasklet_plans;
    std::vector<int> node_to_plan;   // NodeId -> index into tasklet_plans, -1 otherwise
    std::vector<ScopePlan> scope_plans;
    std::vector<int> node_to_scope;  // NodeId -> index into scope_plans, -1 otherwise
    std::vector<ScopeKernel> kernels;  // flat-stride scopes (ScopePlan::kernel)
    int cache_slots = 0;             // total AccessPlan count (Buffer* cache size)
    /// Symbols this plan references: flat-binding slots mirrored from the
    /// Context's string-keyed map once per state execution.
    std::vector<std::pair<sym::SymId, std::string>> referenced;
    /// Flat-binding vector size the plan's ids index into.
    std::size_t symtab_size = 0;

    const TaskletPlan* plan_of(ir::NodeId node) const {
        const auto i = static_cast<std::size_t>(node);
        if (i >= node_to_plan.size() || node_to_plan[i] < 0) return nullptr;
        return &tasklet_plans[static_cast<std::size_t>(node_to_plan[i])];
    }
    const ScopePlan& scope_of(ir::NodeId node) const {
        return scope_plans[static_cast<std::size_t>(
            node_to_scope[static_cast<std::size_t>(node)])];
    }
};

class Interpreter {
public:
    /// `plans` may be shared with other interpreters (one per worker thread
    /// of the parallel fuzzer); nullptr creates a private cache.
    explicit Interpreter(ExecConfig config = {}, PlanCachePtr plans = nullptr)
        : config_(config),
          plans_(plans ? std::move(plans) : std::make_shared<PlanCache>()) {}

    const ExecConfig& config() const { return config_; }
    const PlanCachePtr& plan_cache() const { return plans_; }

    /// Swaps the shared plan cache and drops the per-interpreter plan memo
    /// and execution cache, so a *warm* interpreter — scratch arena and value
    /// pool intact — can be rebound to a different SDFG pair.  This is how
    /// the audit-wide scheduler reuses one execution context across
    /// transformation instances (see core::Fuzzer).  nullptr installs a
    /// fresh private cache.
    void rebind_plan_cache(PlanCachePtr plans);

    /// Runs the whole SDFG.  The context provides inputs (pre-created
    /// buffers) and receives all outputs; it is mutated in place.
    ExecResult run(const ir::SDFG& sdfg, Context& ctx);

    /// Executes one state's dataflow graph (exceptions propagate).
    /// Exposed for the multi-rank runtime.
    void execute_state(const ir::SDFG& sdfg, const ir::State& state, Context& ctx);

    /// Executes a single non-scope node (used by the multi-rank runtime to
    /// interleave ranks at node granularity).
    void execute_node(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                      Context& ctx);

    // --- Data movement helpers (shared with library nodes & multirank) ---

    /// Buffer for `name`, allocating according to descriptor rules.
    Buffer& ensure_buffer(const ir::SDFG& sdfg, Context& ctx, const std::string& name);

    /// Reads the memlet's subset (row-major over the subset's ranges).
    std::vector<Value> gather(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet);

    /// Reads the memlet's subset into `out` (cleared first; capacity — and
    /// thus prior heap allocations — is reused across calls).
    void gather_into(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet,
                     std::vector<Value>& out);

    /// Writes `values` over the memlet's subset (row-major).
    void scatter(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet,
                 const std::vector<Value>& values);

    /// scatter() without the container: writes `count` values row-major.
    void scatter_values(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet,
                        const Value* values, std::size_t count);

    /// Reusable scratch buffer for data-movement helpers (library nodes,
    /// copies, collectives).  Buffer `which` remains valid until the same
    /// index is requested again; distinct indices are independent.
    std::vector<Value>& scratch_values(std::size_t which);

    /// Parsed tasklet for `code`, cached by content (in the shared cache).
    TaskletProgramPtr program_for(const std::string& code);

    /// Drops the per-execution Buffer pointer cache.  Call before driving
    /// execute_node() directly with contexts whose addresses may recycle
    /// earlier, destroyed contexts (run()/execute_state() do this
    /// themselves).
    void invalidate_execution_cache();

    /// Installs (or clears, with nullptr) the def-use coverage bitmap this
    /// interpreter marks into when ExecConfig::coverage is set.  The caller
    /// owns the map, keyed to the executed SDFG's CovAtlas (see
    /// PlanCache::atlas_for), and must keep it alive across run() calls.
    void set_coverage(feedback::CoverageMap* map) { cov_map_ = map; }

private:
    void execute_node_planned(const ir::SDFG& sdfg, const ir::State& state,
                              const StatePlan& plan, ir::NodeId node, Context& ctx);
    void execute_scope(const ir::SDFG& sdfg, const ir::State& state, const StatePlan& plan,
                       ir::NodeId entry, Context& ctx);
    /// Attempts one flat-stride launch of a kernelized scope.  Returns false
    /// when per-launch validation (rank match, footprint in bounds, sane
    /// extents) fails — the caller then runs the generic odometer, which
    /// reproduces the exact partial effects and error of the unspecialized
    /// path.  Ranges are evaluated level by level exactly like the generic
    /// path, so step-0 / unbound-symbol errors surface identically.
    bool execute_scope_kernel(const ir::SDFG& sdfg, const StatePlan& plan, const ScopePlan& sp,
                              const ScopeKernel& kern, Context& ctx);
    /// Whether this launch's concrete lane windows permit vertical (batched)
    /// execution of the innermost extent.  Vertical execution reorders
    /// loads/stores across points, so every (write, other) lane pair on the
    /// same buffer must either be pointwise-aligned — same start offset and
    /// same nonzero inner stride, so the pair only ever interacts at equal
    /// inner positions — or cover disjoint address windows.  In particular a
    /// stride-0 in-place update (x = f(x) broadcast over the segment) is a
    /// sequential dependency and stays on the per-point loop.  Reads scratch
    /// lane state set up by execute_scope_kernel.
    bool segment_alias_safe(const ScopeKernel& kern, std::size_t nparams,
                            std::int64_t seg_len) const;
    /// The batched inner loop of a committed, alias-safe launch: iterates
    /// the outer levels, and per segment runs each tasklet's whole innermost
    /// extent through the vertical VMs in tiles (gather columns -> batch VM
    /// -> scatter columns, converting per lane dtype).  Tile-outer /
    /// tasklet-inner order preserves per-point semantics for
    /// pointwise-aligned cross-tasklet dependencies.  Must only be called
    /// from execute_scope_kernel after footprint validation and fuel
    /// charging; cannot throw (straight-line, throw-free programs by
    /// classification).
    void run_segment_kernel(const StatePlan& plan, const ScopeKernel& kern, std::size_t nparams,
                            std::int64_t seg_len);
    void execute_tasklet(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                         Context& ctx);
    void execute_tasklet_planned(const ir::SDFG& sdfg, const ir::State& state,
                                 const StatePlan& plan, const TaskletPlan& tp, Context& ctx);
    /// Untagged twin of execute_tasklet_planned (tp.sig != Tagged only):
    /// single-point gathers/scatters straight between raw Buffer storage and
    /// a flat double/int64 slot array, converting per the lane's dtype — no
    /// Value tags anywhere.  Returns false — before any store, with only
    /// idempotent work done — when a caller-provided context buffer's dtype
    /// drifted outside the signature's input family; the caller then runs
    /// the tagged path, which handles any dtype.
    bool execute_tasklet_untagged(const ir::SDFG& sdfg, const StatePlan& plan,
                                  const TaskletPlan& tp, Context& ctx);
    void execute_access_copies(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                               Context& ctx);
    void execute_comm_single_rank(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                                  Context& ctx);

    /// Cached StatePlan, keyed by (sdfg plan uid, mutation epoch, state).
    /// Lock-free after the first lookup (per-interpreter memo over the
    /// shared cache); a mutation-epoch bump invalidates transparently.
    const StatePlan& plan_for(const ir::SDFG& sdfg, const ir::State& state);
    /// Mirrors the symbols `plan` references from ctx.symbols into the flat
    /// bindings (once per state execution; also resets the scope stacks).
    void sync_flat_bindings(const StatePlan& plan, const Context& ctx);
    /// Evaluates `subset` under the context's bindings into the shared
    /// scratch range buffer and returns it.
    const std::vector<ir::ConcreteRange>& concretize_into(const ir::Subset& subset,
                                                          const Context& ctx);
    /// Evaluates an access plan's lowered dims against the flat bindings.
    const std::vector<ir::ConcreteRange>& concretize_plan(const AccessPlan& ap);
    StatePlan build_plan(const ir::SDFG& sdfg, const ir::State& state);
    void build_tasklet_plan(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                            TaskletPlan& tp, int& cache_counter, std::vector<sym::SymId>& used);
    /// Classifies one scope for flat-stride execution; appends to
    /// plan.kernels and links sp.kernel on success.
    void classify_scope_kernel(const ir::SDFG& sdfg, const ir::State& state, StatePlan& plan,
                               ScopePlan& sp);

    Buffer& plan_buffer(const ir::SDFG& sdfg, Context& ctx, const StatePlan& plan,
                        const AccessPlan& ap);
    /// Returns the number of points gathered.
    std::int64_t plan_gather(const ir::SDFG& sdfg, Context& ctx, const StatePlan& plan,
                             const AccessPlan& ap, Value* slots);
    void plan_scatter(const ir::SDFG& sdfg, Context& ctx, const StatePlan& plan,
                      const TaskletPlan& tp, const AccessPlan& ap, const Value* slots);

    ExecConfig config_;
    PlanCachePtr plans_;  ///< Shared derived-artifact cache (see plan_cache.h).
    /// Coverage bitmap to mark (nullptr = off; see set_coverage).  Checked
    /// only at scope-launch / top-level-dispatch granularity, never per
    /// point.
    feedback::CoverageMap* cov_map_ = nullptr;
    /// Thread-private memo over plans_: steady-state lookups take no lock.
    std::map<PlanKey, std::shared_ptr<const StatePlan>> plan_memo_;

    /// Per-run() resource accounting, reset at run() entry: map points and
    /// tasklet dispatches executed (the fuel behind ExecConfig::max_points
    /// and ExecResult's cost counters) and bytes charged to the allocation
    /// budget.  Saturating adds — hostile footprints must not overflow into
    /// a fresh budget.
    std::int64_t points_used_ = 0;
    std::int64_t instructions_used_ = 0;
    std::int64_t alloc_used_ = 0;

    /// Flat, reusable execution scratch: all per-map-point storage lives
    /// here so steady-state tasklet execution performs no heap allocation.
    struct Scratch {
        std::vector<Value> slots;               // tasklet connector lanes
        std::vector<Value> regs;                // VM register file
        std::vector<std::int64_t> idx;          // current index tuple
        std::vector<ir::ConcreteRange> ranges;  // concretized subset
        std::vector<std::int64_t> input_counts; // gathered points per input
        std::vector<Buffer*> buffer_cache;      // per-AccessPlan, lazily filled
        const void* cache_plan = nullptr;
        const void* cache_ctx = nullptr;

        // Interned-symbol execution state.
        sym::FlatBindings flat;      // SymId -> value for the current state
        sym::EvalStack eval_stack;   // CompiledExpr scratch
        /// Saved shadowed bindings per active scope parameter (stack,
        /// base-offset discipline: no allocation in steady state).
        struct SavedParam {
            sym::SymId id;
            bool flat_bound;
            std::int64_t flat_value;
            bool str_bound;               // impure scopes only
            std::int64_t str_value;
        };
        std::vector<SavedParam> param_stack;
        /// Name + current value of every active map parameter, innermost
        /// last; lets cold paths (buffer shape resolution) see scope-bound
        /// symbols without per-iteration string-map writes.
        struct ActiveParam {
            const std::string* name;
            std::int64_t value;
        };
        std::vector<ActiveParam> active_params;

        // Untagged tasklet execution (TaskletPlan::sig != Tagged).
        std::vector<double> f64_slots;          // connector lanes, raw doubles
        std::vector<double> f64_regs;           // f64 VM register file
        std::vector<std::int64_t> i64_slots;    // connector lanes, raw int64s
        std::vector<std::int64_t> i64_regs;     // i64 VM register file

        // Segment (batched) execution: column arenas for the vertical VMs —
        // slot and register columns of one tile (slot s occupies
        // [s*tile, s*tile + tile)).  Sized max(slot_count, ...) + reg columns
        // per sig at launch time, reused across tiles and launches.
        std::vector<double> seg_f64;
        std::vector<std::int64_t> seg_i64;

        // Flat-stride kernel launch state (reused across launches).
        /// One access of the running kernel: its buffer, the raw storage
        /// pointer + runtime dtype (untagged fast path), and the current
        /// flat offset.
        struct KernelLane {
            Buffer* buf = nullptr;
            void* raw = nullptr;            // dtype-erased storage base
            ir::DType dt = ir::DType::F64;  // runtime buffer dtype
            std::int64_t offset = 0;
            int slot = -1;  // connector slot base; -1 = side-effect-only gather
        };
        std::vector<KernelLane> lanes;
        /// lanes x params: offset delta applied when level k advances (its
        /// own stride times step, minus the full traversal of every deeper
        /// level — the odometer reset folded into one add).
        std::vector<std::int64_t> lane_delta;
        std::vector<std::int64_t> kbegin, kstep, kcount;  // per level
        std::vector<std::int64_t> kiter;                  // odometer counters
    };
    Scratch scratch_;
    // Deque: growing the pool must not invalidate references handed out for
    // lower indices (library nodes hold several operands at once).
    std::deque<std::vector<Value>> value_pool_;
};

/// Iterates all index tuples of concretized ranges in row-major order,
/// honouring negative steps; invokes fn(idx) with `idx` as the index tuple
/// buffer (resized to ranges.size()).  Implemented as an iterative odometer
/// — no recursion, no allocation beyond `idx` itself.  A range with step 0
/// raises common::Error (it would otherwise silently execute nothing).
template <typename Fn>
void for_each_point_into(const std::vector<ir::ConcreteRange>& ranges,
                         std::vector<std::int64_t>& idx, Fn&& fn) {
    const std::size_t dims = ranges.size();
    idx.resize(dims);
    for (std::size_t d = 0; d < dims; ++d) {
        const auto [begin, end, step] = ranges[d];
        if (step == 0) throw common::Error("range with step 0");
        if (step > 0 ? begin > end : begin < end) return;  // empty dimension
        idx[d] = begin;
    }
    if (dims == 0) {
        fn(idx);  // a 0-D subset has exactly one (empty) point
        return;
    }
    while (true) {
        fn(idx);
        // Odometer carry from the innermost dimension outward.
        std::size_t d = dims;
        while (true) {
            if (d == 0) return;
            --d;
            const auto [begin, end, step] = ranges[d];
            idx[d] += step;
            if (step > 0 ? idx[d] <= end : idx[d] >= end) break;
            idx[d] = begin;
        }
    }
}

/// Allocating convenience wrapper around for_each_point_into.
template <typename Fn>
void for_each_point(const std::vector<ir::ConcreteRange>& ranges, Fn&& fn) {
    std::vector<std::int64_t> idx;
    for_each_point_into(ranges, idx, std::forward<Fn>(fn));
}

}  // namespace ff::interp
