// SDFG interpreter.
//
// Replaces DaCe's code generation + native execution in the original
// implementation: both sides of every differential test run under this
// interpreter, so relative measurements (cutout vs whole program, trials to
// failure) carry the same meaning as in the paper.
//
// Execution model:
//  * The state machine starts at the start state; after a state's dataflow
//    graph executes, the first outgoing interstate edge whose condition
//    evaluates true is taken and its assignments applied (simultaneously).
//    No matching edge terminates the program.  More than
//    `max_state_transitions` transitions is reported as a hang (Sec. 5.1).
//  * Within a state, top-level nodes execute in topological order.  Map
//    scopes iterate their (possibly negative-step) ranges; `Sequential`
//    order is the definition of program semantics, other schedules are
//    declarative hints.
//  * Every container access is bounds-checked; violations and unbound
//    symbols surface as a Crash result rather than undefined behaviour.
//  * Containers are allocated lazily on first access: host transients are
//    zero-filled, Device containers are filled with deterministic garbage.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "interp/buffer.h"
#include "ir/sdfg.h"

namespace ff::interp {

struct ExecConfig {
    std::int64_t max_state_transitions = 100000;
    std::uint64_t device_garbage_seed = 0xD00DULL;
};

enum class ExecStatus { Ok, Crash, Hang };

struct ExecResult {
    ExecStatus status = ExecStatus::Ok;
    std::string message;
    std::int64_t state_transitions = 0;

    bool ok() const { return status == ExecStatus::Ok; }
};

/// Runtime state of one program execution: symbol values + live buffers.
struct Context {
    sym::Bindings symbols;
    std::map<std::string, Buffer> buffers;

    bool has_buffer(const std::string& name) const { return buffers.count(name) > 0; }
};

class Interpreter {
public:
    explicit Interpreter(ExecConfig config = {}) : config_(config) {}

    const ExecConfig& config() const { return config_; }

    /// Runs the whole SDFG.  The context provides inputs (pre-created
    /// buffers) and receives all outputs; it is mutated in place.
    ExecResult run(const ir::SDFG& sdfg, Context& ctx);

    /// Executes one state's dataflow graph (exceptions propagate).
    /// Exposed for the multi-rank runtime.
    void execute_state(const ir::SDFG& sdfg, const ir::State& state, Context& ctx);

    /// Executes a single non-scope node (used by the multi-rank runtime to
    /// interleave ranks at node granularity).
    void execute_node(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                      Context& ctx);

    // --- Data movement helpers (shared with library nodes & multirank) ---

    /// Buffer for `name`, allocating according to descriptor rules.
    Buffer& ensure_buffer(const ir::SDFG& sdfg, Context& ctx, const std::string& name);

    /// Reads the memlet's subset (row-major over the subset's ranges).
    std::vector<Value> gather(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet);

    /// Writes `values` over the memlet's subset (row-major).
    void scatter(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet,
                 const std::vector<Value>& values);

    /// Parsed tasklet for `code`, cached by content.
    TaskletProgramPtr program_for(const std::string& code);

private:
    void execute_scope(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId entry,
                       Context& ctx);
    void execute_tasklet(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                         Context& ctx);
    void execute_access_copies(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                               Context& ctx);
    void execute_comm_single_rank(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                                  Context& ctx);

    /// Cached execution plan (topological order + scope structure) for a
    /// state.  Valid while the SDFG is not mutated; create a fresh
    /// Interpreter after applying a transformation.
    const void* plan_for(const ir::State& state);

    ExecConfig config_;
    std::unordered_map<std::string, TaskletProgramPtr> tasklet_cache_;
    std::map<const ir::State*, std::shared_ptr<void>> plan_cache_;
};

/// Iterates all index tuples of concretized ranges in row-major order,
/// honouring negative steps; invokes fn(index_tuple).
template <typename Fn>
void for_each_point(const std::vector<ir::ConcreteRange>& ranges, Fn&& fn) {
    std::vector<std::int64_t> idx(ranges.size());
    // Recursive lambda over dimensions.
    auto rec = [&](auto&& self, std::size_t dim) -> void {
        if (dim == ranges.size()) {
            fn(idx);
            return;
        }
        const auto [begin, end, step] = ranges[dim];
        if (step > 0) {
            for (std::int64_t v = begin; v <= end; v += step) {
                idx[dim] = v;
                self(self, dim + 1);
            }
        } else if (step < 0) {
            for (std::int64_t v = begin; v >= end; v += step) {
                idx[dim] = v;
                self(self, dim + 1);
            }
        }
    };
    rec(rec, 0);
}

}  // namespace ff::interp
