#include "interp/tasklet_lang.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <optional>
#include <set>

#include "common/error.h"
#include "symbolic/expr.h"

namespace ff::interp {

using common::ParseError;

/// Recursive-descent parser for the tasklet grammar (see header).
class TaskletParser {
public:
    explicit TaskletParser(const std::string& text) : text_(text) {}

    std::shared_ptr<TaskletProgram> parse() {
        auto prog = std::shared_ptr<TaskletProgram>(new TaskletProgram());
        prog_ = prog.get();
        prog_->source_ = text_;

        while (true) {
            skip_ws();
            if (pos_ >= text_.size()) break;
            statement();
            skip_ws();
            if (pos_ < text_.size()) {
                if (text_[pos_] == ';') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '\n') {
                    ++pos_;
                    continue;
                }
                fail("expected ';' between statements");
            }
        }
        if (prog_->stmts_.empty()) fail("empty tasklet");
        finalize_connectors();
        return prog;
    }

private:
    [[noreturn]] void fail(const std::string& msg) {
        throw ParseError("tasklet '" + text_ + "' at offset " + std::to_string(pos_) + ": " + msg);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool eat(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool eat2(const char* two) {
        skip_ws();
        if (pos_ + 1 < text_.size() && text_[pos_] == two[0] && text_[pos_ + 1] == two[1]) {
            pos_ += 2;
            return true;
        }
        return false;
    }

    char peek() {
        skip_ws();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    std::string ident() {
        skip_ws();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
            ++pos_;
        if (start == pos_) fail("expected identifier");
        return std::string(text_.substr(start, pos_ - start));
    }

    int var_index(const std::string& name) {
        for (std::size_t i = 0; i < prog_->var_names_.size(); ++i)
            if (prog_->var_names_[i] == name) return static_cast<int>(i);
        prog_->var_names_.push_back(name);
        return static_cast<int>(prog_->var_names_.size() - 1);
    }

    int lane_suffix() {
        // Optional constant [k] lane index.
        if (!eat('[')) return 0;
        skip_ws();
        std::size_t start = pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
        if (start == pos_) fail("expected constant lane index");
        int lane = 0;
        std::from_chars(text_.data() + start, text_.data() + pos_, lane);
        if (!eat(']')) fail("expected ']'");
        return lane;
    }

    void statement() {
        const std::string name = ident();
        const int lane = peek() == '[' ? lane_suffix() : 0;
        if (!eat('=')) fail("expected '=' in assignment");
        const int root = expr();
        const int vi = var_index(name);
        note_write(vi, lane);
        prog_->stmts_.push_back(TaskletProgram::Stmt{vi, lane, root});
    }

    // --- Expression grammar ---

    int add_node(TaskletProgram::Node n) {
        prog_->nodes_.push_back(n);
        return static_cast<int>(prog_->nodes_.size() - 1);
    }

    int expr() { return ternary(); }

    int ternary() {
        int cond = logical_or();
        if (eat('?')) {
            int a = expr();
            if (!eat(':')) fail("expected ':' in ternary");
            int b = expr();
            TaskletProgram::Node n;
            n.op = TaskletProgram::Op::Ternary;
            n.a = cond; n.b = a; n.c = b;
            return add_node(n);
        }
        return cond;
    }

    int logical_or() {
        int lhs = logical_and();
        while (eat2("||")) lhs = binop(TaskletProgram::Op::Or, lhs, logical_and());
        return lhs;
    }

    int logical_and() {
        int lhs = comparison();
        while (eat2("&&")) lhs = binop(TaskletProgram::Op::And, lhs, comparison());
        return lhs;
    }

    int comparison() {
        int lhs = additive();
        if (eat2("<=")) return binop(TaskletProgram::Op::Le, lhs, additive());
        if (eat2(">=")) return binop(TaskletProgram::Op::Ge, lhs, additive());
        if (eat2("==")) return binop(TaskletProgram::Op::Eq, lhs, additive());
        if (eat2("!=")) return binop(TaskletProgram::Op::Ne, lhs, additive());
        if (peek() == '<') { ++pos_; return binop(TaskletProgram::Op::Lt, lhs, additive()); }
        if (peek() == '>') { ++pos_; return binop(TaskletProgram::Op::Gt, lhs, additive()); }
        return lhs;
    }

    int additive() {
        int lhs = multiplicative();
        while (true) {
            if (eat('+')) lhs = binop(TaskletProgram::Op::Add, lhs, multiplicative());
            else if (peek() == '-') { ++pos_; lhs = binop(TaskletProgram::Op::Sub, lhs, multiplicative()); }
            else break;
        }
        return lhs;
    }

    int multiplicative() {
        int lhs = unary();
        while (true) {
            if (eat('*')) lhs = binop(TaskletProgram::Op::Mul, lhs, unary());
            else if (eat('/')) lhs = binop(TaskletProgram::Op::Div, lhs, unary());
            else if (eat('%')) lhs = binop(TaskletProgram::Op::Mod, lhs, unary());
            else break;
        }
        return lhs;
    }

    int unary() {
        if (peek() == '-') {
            ++pos_;
            TaskletProgram::Node n;
            n.op = TaskletProgram::Op::Neg;
            n.a = unary();
            return add_node(n);
        }
        if (peek() == '!') {
            ++pos_;
            TaskletProgram::Node n;
            n.op = TaskletProgram::Op::Not;
            n.a = unary();
            return add_node(n);
        }
        return primary();
    }

    int binop(TaskletProgram::Op op, int a, int b) {
        TaskletProgram::Node n;
        n.op = op;
        n.a = a;
        n.b = b;
        return add_node(n);
    }

    int primary() {
        skip_ws();
        if (pos_ >= text_.size()) fail("unexpected end of tasklet");
        const char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') return number();
        if (c == '(') {
            ++pos_;
            int e = expr();
            if (!eat(')')) fail("expected ')'");
            return e;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            const std::string name = ident();
            if (peek() == '(') return function_call(name);
            const int lane = peek() == '[' ? lane_suffix() : 0;
            const int vi = var_index(name);
            note_read(vi, lane);
            TaskletProgram::Node n;
            n.op = TaskletProgram::Op::Load;
            n.var = vi;
            n.lane = lane;
            return add_node(n);
        }
        fail("unexpected character");
    }

    int number() {
        skip_ws();
        std::size_t start = pos_;
        bool is_float = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) { ++pos_; continue; }
            if (c == '.' || c == 'e' || c == 'E') { is_float = true; ++pos_; continue; }
            if ((c == '+' || c == '-') && pos_ > start &&
                (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) { ++pos_; continue; }
            break;
        }
        const std::string_view tok(text_.data() + start, pos_ - start);
        TaskletProgram::Node n;
        if (is_float) {
            n.op = TaskletProgram::Op::ConstF;
            double d = 0;
            auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
            if (ec != std::errc()) fail("bad number");
            (void)p;
            n.fval = d;
        } else {
            n.op = TaskletProgram::Op::ConstI;
            std::int64_t v = 0;
            auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (ec != std::errc()) fail("bad number");
            (void)p;
            n.ival = v;
        }
        return add_node(n);
    }

    int function_call(const std::string& name) {
        using Op = TaskletProgram::Op;
        struct Fn { const char* name; Op op; int arity; };
        static constexpr Fn kFns[] = {
            {"min", Op::Min, 2},   {"max", Op::Max, 2},   {"abs", Op::Abs, 1},
            {"exp", Op::Exp, 1},   {"log", Op::Log, 1},   {"sqrt", Op::Sqrt, 1},
            {"sin", Op::Sin, 1},   {"cos", Op::Cos, 1},   {"tanh", Op::Tanh, 1},
            {"pow", Op::Pow, 2},   {"floor", Op::Floor, 1}, {"ceil", Op::Ceil, 1},
            {"select", Op::Select, 3},
        };
        const Fn* fn = nullptr;
        for (const Fn& f : kFns)
            if (name == f.name) { fn = &f; break; }
        if (!fn) fail("unknown function: " + name);
        if (!eat('(')) fail("expected '('");
        TaskletProgram::Node n;
        n.op = fn->op;
        n.a = expr();
        if (fn->arity >= 2) {
            if (!eat(',')) fail("expected ','");
            n.b = expr();
        }
        if (fn->arity >= 3) {
            if (!eat(',')) fail("expected ','");
            n.c = expr();
        }
        if (!eat(')')) fail("expected ')'");
        return add_node(n);
    }

    // --- Connector classification ---

    void note_read(int var, int lane) {
        const std::string& name = prog_->var_names_[static_cast<std::size_t>(var)];
        if (assigned_.count(name)) return;  // local: assigned earlier in program order
        auto& width = pending_reads_[name];
        width = std::max(width, lane + 1);
    }

    void note_write(int var, int lane) {
        const std::string& name = prog_->var_names_[static_cast<std::size_t>(var)];
        assigned_.insert(name);
        auto& width = pending_writes_[name];
        width = std::max(width, lane + 1);
    }

    void finalize_connectors() {
        prog_->reads_ = pending_reads_;
        prog_->writes_ = pending_writes_;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    TaskletProgram* prog_ = nullptr;
    std::set<std::string> assigned_;
    std::map<std::string, int> pending_reads_;
    std::map<std::string, int> pending_writes_;
};

// --- Shared scalar operator semantics -------------------------------------
//
// Both engines (AST walker + bytecode VM) call through these helpers so the
// numeric model cannot drift between them.

namespace {

inline Value make_bool(bool b) { return Value::from_int(b ? 1 : 0); }

inline Value op_neg(const Value& a) {
    return a.is_float ? Value::from_double(-a.f) : Value::from_int(-a.i);
}

inline Value op_abs(const Value& a) {
    return a.is_float ? Value::from_double(std::fabs(a.f)) : Value::from_int(a.i < 0 ? -a.i : a.i);
}

inline Value op_add(const Value& a, const Value& b) {
    return (a.is_float || b.is_float) ? Value::from_double(a.as_double() + b.as_double())
                                      : Value::from_int(a.i + b.i);
}

inline Value op_sub(const Value& a, const Value& b) {
    return (a.is_float || b.is_float) ? Value::from_double(a.as_double() - b.as_double())
                                      : Value::from_int(a.i - b.i);
}

inline Value op_mul(const Value& a, const Value& b) {
    return (a.is_float || b.is_float) ? Value::from_double(a.as_double() * b.as_double())
                                      : Value::from_int(a.i * b.i);
}

inline Value op_div(const Value& a, const Value& b) {
    if (a.is_float || b.is_float) return Value::from_double(a.as_double() / b.as_double());
    return Value::from_int(sym::floordiv_i64(a.i, b.i));
}

inline Value op_mod(const Value& a, const Value& b) {
    if (a.is_float || b.is_float)
        return Value::from_double(std::fmod(a.as_double(), b.as_double()));
    return Value::from_int(sym::floormod_i64(a.i, b.i));
}

inline Value op_min(const Value& a, const Value& b) {
    return (a.is_float || b.is_float)
               ? Value::from_double(std::fmin(a.as_double(), b.as_double()))
               : Value::from_int(std::min(a.i, b.i));
}

inline Value op_max(const Value& a, const Value& b) {
    return (a.is_float || b.is_float)
               ? Value::from_double(std::fmax(a.as_double(), b.as_double()))
               : Value::from_int(std::max(a.i, b.i));
}

}  // namespace

Value TaskletProgram::eval(int node, const std::vector<std::vector<Value>*>& slots) const {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    switch (n.op) {
        case Op::ConstF: return Value::from_double(n.fval);
        case Op::ConstI: return Value::from_int(n.ival);
        case Op::Load: {
            const std::vector<Value>* slot = slots[static_cast<std::size_t>(n.var)];
            if (!slot || static_cast<std::size_t>(n.lane) >= slot->size())
                throw common::Error("tasklet: unbound connector '" +
                                    var_names_[static_cast<std::size_t>(n.var)] + "'");
            return (*slot)[static_cast<std::size_t>(n.lane)];
        }
        case Op::Neg: return op_neg(eval(n.a, slots));
        case Op::Not: return make_bool(!eval(n.a, slots).truthy());
        default: break;
    }

    // Binary and ternary operators.
    if (n.op == Op::Ternary)
        return eval(n.a, slots).truthy() ? eval(n.b, slots) : eval(n.c, slots);
    if (n.op == Op::Select)
        return eval(n.a, slots).truthy() ? eval(n.b, slots) : eval(n.c, slots);
    if (n.op == Op::And) {
        // Short-circuiting.
        if (!eval(n.a, slots).truthy()) return make_bool(false);
        return make_bool(eval(n.b, slots).truthy());
    }
    if (n.op == Op::Or) {
        if (eval(n.a, slots).truthy()) return make_bool(true);
        return make_bool(eval(n.b, slots).truthy());
    }

    const Value a = eval(n.a, slots);
    // Unary float functions.
    switch (n.op) {
        case Op::Abs: return op_abs(a);
        case Op::Exp: return Value::from_double(std::exp(a.as_double()));
        case Op::Log: return Value::from_double(std::log(a.as_double()));
        case Op::Sqrt: return Value::from_double(std::sqrt(a.as_double()));
        case Op::Sin: return Value::from_double(std::sin(a.as_double()));
        case Op::Cos: return Value::from_double(std::cos(a.as_double()));
        case Op::Tanh: return Value::from_double(std::tanh(a.as_double()));
        case Op::Floor: return Value::from_double(std::floor(a.as_double()));
        case Op::Ceil: return Value::from_double(std::ceil(a.as_double()));
        default: break;
    }

    const Value b = eval(n.b, slots);
    switch (n.op) {
        case Op::Add: return op_add(a, b);
        case Op::Sub: return op_sub(a, b);
        case Op::Mul: return op_mul(a, b);
        case Op::Div: return op_div(a, b);
        case Op::Mod: return op_mod(a, b);
        case Op::Lt: return make_bool(a.as_double() < b.as_double());
        case Op::Le: return make_bool(a.as_double() <= b.as_double());
        case Op::Gt: return make_bool(a.as_double() > b.as_double());
        case Op::Ge: return make_bool(a.as_double() >= b.as_double());
        case Op::Eq: return make_bool(a.as_double() == b.as_double());
        case Op::Ne: return make_bool(a.as_double() != b.as_double());
        case Op::Min: return op_min(a, b);
        case Op::Max: return op_max(a, b);
        case Op::Pow: return Value::from_double(std::pow(a.as_double(), b.as_double()));
        default: break;
    }
    throw common::Error("tasklet: unhandled op");
}

void TaskletProgram::execute(ConnectorEnv& env) const {
    // Bind variable slots once: var index -> env entry.
    std::vector<std::vector<Value>*> slots(var_names_.size(), nullptr);
    for (std::size_t i = 0; i < var_names_.size(); ++i) {
        auto it = env.find(var_names_[i]);
        if (it != env.end()) slots[i] = &it->second;
    }
    // Check declared inputs.
    for (const auto& [name, width] : reads_) {
        auto it = env.find(name);
        if (it == env.end() || it->second.size() < static_cast<std::size_t>(width))
            throw common::Error("tasklet: missing input connector '" + name + "'");
    }
    for (const Stmt& s : stmts_) {
        const Value v = eval(s.expr, slots);
        const std::string& name = var_names_[static_cast<std::size_t>(s.var)];
        auto& slot = env[name];  // std::map: stable addresses on insert
        if (slot.size() <= static_cast<std::size_t>(s.lane))
            slot.resize(static_cast<std::size_t>(s.lane) + 1);
        slot[static_cast<std::size_t>(s.lane)] = v;
        slots[static_cast<std::size_t>(s.var)] = &slot;
    }
}

// --- Bytecode compiler -----------------------------------------------------
//
// Lowers the AST arena into a flat register program.  Register allocation is
// expression-local (child results live in consecutive registers), so the
// register file is as deep as the deepest expression.  Constant folding
// evaluates pure subtrees at compile time — but never folds an operation
// that could throw at runtime (integer division by a zero constant), so
// compiled and reference engines crash identically.

class TaskletCompiler {
public:
    explicit TaskletCompiler(TaskletProgram& p) : p_(p) { compile(); }

private:
    using Op = TaskletProgram::Op;
    using BC = TaskletProgram::BC;
    using BCInstr = TaskletProgram::BCInstr;

    void compile() {
        build_slot_table();
        folded_.assign(p_.nodes_.size(), std::nullopt);
        folded_known_.assign(p_.nodes_.size(), false);

        for (const TaskletProgram::Stmt& s : p_.stmts_) {
            compile_expr(s.expr, 0);
            const SlotDesc& sd = p_.slot_table_[static_cast<std::size_t>(s.var)];
            emit(BCInstr{BC::StoreSlot, 0, sd.base + s.lane, 0});
            mark_assigned(s.var, s.lane);
        }
        p_.reg_count_ = max_reg_ + 1;
        p_.straightline_ = true;
        for (const BCInstr& in : p_.bytecode_) {
            if (in.op == BC::Div || in.op == BC::Mod) p_.has_div_mod_ = true;
            if (in.op == BC::Jump || in.op == BC::JumpIfFalse || in.op == BC::JumpIfTrue ||
                in.op == BC::Trap)
                p_.straightline_ = false;
        }
        analyze_f64();
        analyze_i64();
    }

    // --- Untagged f64 feasibility (see TaskletProgram::has_f64_variant) ---

    /// Abstract value: which runtime tags a value can carry, plus a bound on
    /// its magnitude while integer (so we know doubles represent it exactly).
    struct AbsVal {
        bool can_int = false;
        bool can_float = false;
        double ibound = 0.0;

        static AbsVal flt() { return AbsVal{false, true, 0.0}; }
        static AbsVal intv(double bound) { return AbsVal{true, false, bound}; }
        void merge(const AbsVal& o) {
            can_int = can_int || o.can_int;
            can_float = can_float || o.can_float;
            ibound = std::max(ibound, o.ibound);
        }
    };
    struct AbsState {
        std::vector<AbsVal> slots, regs;
        void merge(const AbsState& o) {
            for (std::size_t i = 0; i < slots.size(); ++i) slots[i].merge(o.slots[i]);
            for (std::size_t i = 0; i < regs.size(); ++i) regs[i].merge(o.regs[i]);
        }
    };

    /// Forward abstract interpretation over the bytecode (all jumps are
    /// forward, so one in-order pass with merges at join points converges).
    /// Assumes every slot starts as a double: input lanes are loaded from F64
    /// containers by construction of the selection rule, and non-input lanes
    /// are zero-initialized to float 0.0 by both engines.
    void analyze_f64() {
        // Integer intermediates beyond 2^50 could round in double
        // representation; products and sums of a few stay well inside 2^53.
        constexpr double kIntBound = 1125899906842624.0;  // 2^50
        const std::size_t n = p_.bytecode_.size();
        std::vector<std::optional<AbsState>> entry(n + 1);
        AbsState init;
        init.slots.assign(static_cast<std::size_t>(p_.slot_count_), AbsVal::flt());
        init.regs.assign(static_cast<std::size_t>(p_.reg_count_), AbsVal{});
        entry[0] = std::move(init);

        auto merge_into = [&](std::size_t pc, const AbsState& s) {
            if (pc > n) return;
            if (!entry[pc]) entry[pc] = s;
            else entry[pc]->merge(s);
        };

        bool feasible = true;
        for (std::size_t pc = 0; pc < n && feasible; ++pc) {
            if (!entry[pc]) continue;  // unreachable
            AbsState s = *entry[pc];
            const BCInstr& in = p_.bytecode_[pc];
            auto out = [&](AbsVal v) {
                if (v.can_int && v.ibound > kIntBound) feasible = false;
                s.regs[static_cast<std::size_t>(in.dst)] = v;
            };
            const auto ra = [&]() -> const AbsVal& {
                return s.regs[static_cast<std::size_t>(in.a)];
            };
            const auto rb = [&]() -> const AbsVal& {
                return s.regs[static_cast<std::size_t>(in.b)];
            };
            bool falls_through = true;
            switch (in.op) {
                case BC::Const: {
                    const Value& c = p_.consts_[static_cast<std::size_t>(in.a)];
                    out(c.is_float ? AbsVal::flt()
                                   : AbsVal::intv(std::fabs(static_cast<double>(c.i))));
                    break;
                }
                case BC::LoadSlot: out(s.slots[static_cast<std::size_t>(in.a)]); break;
                case BC::StoreSlot:
                    s.slots[static_cast<std::size_t>(in.a)] = rb();
                    break;
                case BC::Bool: out(AbsVal::intv(1.0)); break;
                case BC::Trap: feasible = false; break;
                case BC::Jump:
                    merge_into(static_cast<std::size_t>(in.a), s);
                    falls_through = false;
                    break;
                case BC::JumpIfFalse:
                case BC::JumpIfTrue:
                    merge_into(static_cast<std::size_t>(in.b), s);
                    break;
                case BC::Neg:
                case BC::Abs: out(ra()); break;
                case BC::Not: out(AbsVal::intv(1.0)); break;
                case BC::Exp: case BC::Log: case BC::Sqrt: case BC::Sin: case BC::Cos:
                case BC::Tanh: case BC::Floor: case BC::Ceil: case BC::Pow:
                    out(AbsVal::flt());
                    break;
                case BC::Add:
                case BC::Sub:
                    out(AbsVal{ra().can_int && rb().can_int, ra().can_float || rb().can_float,
                               ra().ibound + rb().ibound});
                    break;
                case BC::Mul:
                    out(AbsVal{ra().can_int && rb().can_int, ra().can_float || rb().can_float,
                               ra().ibound * rb().ibound});
                    break;
                case BC::Div:
                case BC::Mod:
                    // Both operands integer at runtime would take the tagged
                    // VM's floor-semantics (and zero-throwing) int path.
                    if (ra().can_int && rb().can_int) feasible = false;
                    out(AbsVal::flt());
                    break;
                case BC::Lt: case BC::Le: case BC::Gt: case BC::Ge:
                case BC::Eq: case BC::Ne:
                    out(AbsVal::intv(1.0));
                    break;
                case BC::Min:
                case BC::Max:
                    out(AbsVal{ra().can_int && rb().can_int, ra().can_float || rb().can_float,
                               std::max(ra().ibound, rb().ibound)});
                    break;
            }
            if (falls_through) merge_into(pc + 1, s);
        }

        p_.f64_feasible_ = feasible;
        if (!feasible) return;
        p_.f64consts_.reserve(p_.consts_.size());
        for (const Value& c : p_.consts_) p_.f64consts_.push_back(c.as_double());
    }

    /// Untagged i64 feasibility (see TaskletProgram::has_i64_variant).  With
    /// every input arriving as int64 and every constant integer, values can
    /// only become float through a float-producing opcode — so feasibility is
    /// a pure instruction scan, no abstract interpretation needed.
    void analyze_i64() {
        bool feasible = true;
        for (const Value& c : p_.consts_) feasible = feasible && !c.is_float;
        for (const BCInstr& in : p_.bytecode_) {
            switch (in.op) {
                case BC::Trap:
                case BC::Exp: case BC::Log: case BC::Sqrt: case BC::Sin: case BC::Cos:
                case BC::Tanh: case BC::Floor: case BC::Ceil: case BC::Pow:
                    feasible = false;
                    break;
                default: break;
            }
        }
        p_.i64_feasible_ = feasible;
        if (!feasible) return;
        p_.i64consts_.reserve(p_.consts_.size());
        for (const Value& c : p_.consts_) p_.i64consts_.push_back(c.i);
    }

    void build_slot_table() {
        const std::size_t nvars = p_.var_names_.size();
        std::vector<int> width(nvars, 1);
        auto widen = [&](int var, int lane) {
            width[static_cast<std::size_t>(var)] =
                std::max(width[static_cast<std::size_t>(var)], lane + 1);
        };
        for (const TaskletProgram::Node& n : p_.nodes_)
            if (n.op == Op::Load) widen(n.var, n.lane);
        for (const TaskletProgram::Stmt& s : p_.stmts_) widen(s.var, s.lane);

        p_.slot_table_.resize(nvars);
        assigned_lanes_.resize(nvars);
        int base = 0;
        for (std::size_t v = 0; v < nvars; ++v) {
            SlotDesc& sd = p_.slot_table_[v];
            sd.name = p_.var_names_[v];
            auto rit = p_.reads_.find(sd.name);
            auto wit = p_.writes_.find(sd.name);
            sd.is_input = rit != p_.reads_.end();
            sd.is_output = wit != p_.writes_.end();
            if (rit != p_.reads_.end()) width[v] = std::max(width[v], rit->second);
            if (wit != p_.writes_.end()) width[v] = std::max(width[v], wit->second);
            sd.width = width[v];
            sd.base = base;
            base += sd.width;
            // Input lanes arrive pre-bound; local/output lanes become
            // available as statements assign them.
            assigned_lanes_[v].assign(static_cast<std::size_t>(sd.width), sd.is_input);
        }
        p_.slot_count_ = base;
    }

    void mark_assigned(int var, int lane) {
        auto& lanes = assigned_lanes_[static_cast<std::size_t>(var)];
        if (static_cast<std::size_t>(lane) < lanes.size())
            lanes[static_cast<std::size_t>(lane)] = true;
    }

    int emit(BCInstr in) {
        p_.bytecode_.push_back(in);
        return static_cast<int>(p_.bytecode_.size() - 1);
    }

    int const_index(const Value& v) {
        p_.consts_.push_back(v);
        return static_cast<int>(p_.consts_.size() - 1);
    }

    void touch_reg(int r) { max_reg_ = std::max(max_reg_, r); }

    /// Compile-time evaluation of pure constant subtrees.  Returns nullopt
    /// when the subtree references a connector or could throw at runtime.
    std::optional<Value> fold(int ni) {
        if (folded_known_[static_cast<std::size_t>(ni)])
            return folded_[static_cast<std::size_t>(ni)];
        folded_known_[static_cast<std::size_t>(ni)] = true;
        auto& out = folded_[static_cast<std::size_t>(ni)];
        const TaskletProgram::Node& n = p_.nodes_[static_cast<std::size_t>(ni)];
        switch (n.op) {
            case Op::ConstF: out = Value::from_double(n.fval); break;
            case Op::ConstI: out = Value::from_int(n.ival); break;
            case Op::Load: break;
            case Op::Neg:
                if (auto a = fold(n.a)) out = op_neg(*a);
                break;
            case Op::Not:
                if (auto a = fold(n.a)) out = make_bool(!a->truthy());
                break;
            case Op::And: {
                auto a = fold(n.a);
                if (a && !a->truthy()) out = make_bool(false);
                else if (a) {
                    if (auto b = fold(n.b)) out = make_bool(b->truthy());
                }
                break;
            }
            case Op::Or: {
                auto a = fold(n.a);
                if (a && a->truthy()) out = make_bool(true);
                else if (a) {
                    if (auto b = fold(n.b)) out = make_bool(b->truthy());
                }
                break;
            }
            case Op::Ternary:
            case Op::Select: {
                if (auto c = fold(n.a)) out = fold(c->truthy() ? n.b : n.c);
                break;
            }
            case Op::Abs:
                if (auto a = fold(n.a)) out = op_abs(*a);
                break;
            case Op::Exp: case Op::Log: case Op::Sqrt: case Op::Sin: case Op::Cos:
            case Op::Tanh: case Op::Floor: case Op::Ceil: {
                if (auto a = fold(n.a)) out = Value::from_double(fold_unary_f(n.op, *a));
                break;
            }
            default: {  // binary arithmetic / comparison
                auto a = fold(n.a);
                auto b = fold(n.b);
                if (!a || !b) break;
                // Integer division/modulo by a zero constant throws at
                // runtime; leave it to the VM so both engines crash alike.
                if ((n.op == Op::Div || n.op == Op::Mod) && !a->is_float && !b->is_float &&
                    b->i == 0)
                    break;
                out = fold_binary(n.op, *a, *b);
                break;
            }
        }
        return out;
    }

    static double fold_unary_f(Op op, const Value& a) {
        const double x = a.as_double();
        switch (op) {
            case Op::Exp: return std::exp(x);
            case Op::Log: return std::log(x);
            case Op::Sqrt: return std::sqrt(x);
            case Op::Sin: return std::sin(x);
            case Op::Cos: return std::cos(x);
            case Op::Tanh: return std::tanh(x);
            case Op::Floor: return std::floor(x);
            case Op::Ceil: return std::ceil(x);
            default: throw common::Error("tasklet compiler: not a unary float op");
        }
    }

    static Value fold_binary(Op op, const Value& a, const Value& b) {
        switch (op) {
            case Op::Add: return op_add(a, b);
            case Op::Sub: return op_sub(a, b);
            case Op::Mul: return op_mul(a, b);
            case Op::Div: return op_div(a, b);
            case Op::Mod: return op_mod(a, b);
            case Op::Lt: return make_bool(a.as_double() < b.as_double());
            case Op::Le: return make_bool(a.as_double() <= b.as_double());
            case Op::Gt: return make_bool(a.as_double() > b.as_double());
            case Op::Ge: return make_bool(a.as_double() >= b.as_double());
            case Op::Eq: return make_bool(a.as_double() == b.as_double());
            case Op::Ne: return make_bool(a.as_double() != b.as_double());
            case Op::Min: return op_min(a, b);
            case Op::Max: return op_max(a, b);
            case Op::Pow: return Value::from_double(std::pow(a.as_double(), b.as_double()));
            default: throw common::Error("tasklet compiler: not a binary op");
        }
    }

    static BC unary_bc(Op op) {
        switch (op) {
            case Op::Neg: return BC::Neg;
            case Op::Not: return BC::Not;
            case Op::Abs: return BC::Abs;
            case Op::Exp: return BC::Exp;
            case Op::Log: return BC::Log;
            case Op::Sqrt: return BC::Sqrt;
            case Op::Sin: return BC::Sin;
            case Op::Cos: return BC::Cos;
            case Op::Tanh: return BC::Tanh;
            case Op::Floor: return BC::Floor;
            case Op::Ceil: return BC::Ceil;
            default: throw common::Error("tasklet compiler: not a unary op");
        }
    }

    static BC binary_bc(Op op) {
        switch (op) {
            case Op::Add: return BC::Add;
            case Op::Sub: return BC::Sub;
            case Op::Mul: return BC::Mul;
            case Op::Div: return BC::Div;
            case Op::Mod: return BC::Mod;
            case Op::Lt: return BC::Lt;
            case Op::Le: return BC::Le;
            case Op::Gt: return BC::Gt;
            case Op::Ge: return BC::Ge;
            case Op::Eq: return BC::Eq;
            case Op::Ne: return BC::Ne;
            case Op::Min: return BC::Min;
            case Op::Max: return BC::Max;
            case Op::Pow: return BC::Pow;
            default: throw common::Error("tasklet compiler: not a binary op");
        }
    }

    int here() const { return static_cast<int>(p_.bytecode_.size()); }

    /// Compiles `ni` so its value lands in regs[dst]; may clobber any
    /// register >= dst.
    void compile_expr(int ni, int dst) {
        touch_reg(dst);
        if (auto v = fold(ni)) {
            emit(BCInstr{BC::Const, dst, const_index(*v), 0});
            return;
        }
        const TaskletProgram::Node& n = p_.nodes_[static_cast<std::size_t>(ni)];
        switch (n.op) {
            case Op::Load: {
                const SlotDesc& sd = p_.slot_table_[static_cast<std::size_t>(n.var)];
                const auto& lanes = assigned_lanes_[static_cast<std::size_t>(n.var)];
                const bool bound = static_cast<std::size_t>(n.lane) < lanes.size() &&
                                   lanes[static_cast<std::size_t>(n.lane)];
                // A lane that is neither an input nor assigned by an earlier
                // statement can never hold a value: trap with the same error
                // the reference engine raises.  (The interpreter falls back
                // to the reference engine if an edge binds such a connector
                // at runtime — see StatePlan.)
                if (!bound) {
                    emit(BCInstr{BC::Trap, 0, n.var, 0});
                    const std::string& name = p_.var_names_[static_cast<std::size_t>(n.var)];
                    bool seen = false;
                    for (const std::string& t : p_.trap_connectors_) seen = seen || t == name;
                    if (!seen) p_.trap_connectors_.push_back(name);
                    return;
                }
                emit(BCInstr{BC::LoadSlot, dst, sd.base + n.lane, 0});
                return;
            }
            case Op::Neg: case Op::Not: case Op::Abs: case Op::Exp: case Op::Log:
            case Op::Sqrt: case Op::Sin: case Op::Cos: case Op::Tanh: case Op::Floor:
            case Op::Ceil: {
                compile_expr(n.a, dst);
                emit(BCInstr{unary_bc(n.op), dst, dst, 0});
                return;
            }
            case Op::And: {
                // fold() already handled a-constant-false / both-constant.
                if (auto a = fold(n.a)) {
                    (void)a;  // constant true: result is bool(b)
                    compile_expr(n.b, dst);
                    emit(BCInstr{BC::Bool, dst, dst, 0});
                    return;
                }
                compile_expr(n.a, dst);
                const int jf = emit(BCInstr{BC::JumpIfFalse, 0, dst, 0});
                compile_expr(n.b, dst);
                emit(BCInstr{BC::Bool, dst, dst, 0});
                const int jend = emit(BCInstr{BC::Jump, 0, 0, 0});
                p_.bytecode_[static_cast<std::size_t>(jf)].b = here();
                emit(BCInstr{BC::Const, dst, const_index(make_bool(false)), 0});
                p_.bytecode_[static_cast<std::size_t>(jend)].a = here();
                return;
            }
            case Op::Or: {
                if (auto a = fold(n.a)) {
                    (void)a;  // constant false: result is bool(b)
                    compile_expr(n.b, dst);
                    emit(BCInstr{BC::Bool, dst, dst, 0});
                    return;
                }
                compile_expr(n.a, dst);
                const int jt = emit(BCInstr{BC::JumpIfTrue, 0, dst, 0});
                compile_expr(n.b, dst);
                emit(BCInstr{BC::Bool, dst, dst, 0});
                const int jend = emit(BCInstr{BC::Jump, 0, 0, 0});
                p_.bytecode_[static_cast<std::size_t>(jt)].b = here();
                emit(BCInstr{BC::Const, dst, const_index(make_bool(true)), 0});
                p_.bytecode_[static_cast<std::size_t>(jend)].a = here();
                return;
            }
            case Op::Ternary:
            case Op::Select: {
                if (auto c = fold(n.a)) {
                    compile_expr(c->truthy() ? n.b : n.c, dst);
                    return;
                }
                compile_expr(n.a, dst);
                const int jf = emit(BCInstr{BC::JumpIfFalse, 0, dst, 0});
                compile_expr(n.b, dst);
                const int jend = emit(BCInstr{BC::Jump, 0, 0, 0});
                p_.bytecode_[static_cast<std::size_t>(jf)].b = here();
                compile_expr(n.c, dst);
                p_.bytecode_[static_cast<std::size_t>(jend)].a = here();
                return;
            }
            default: {  // binary arithmetic / comparison
                compile_expr(n.a, dst);
                compile_expr(n.b, dst + 1);
                emit(BCInstr{binary_bc(n.op), dst, dst, dst + 1});
                return;
            }
        }
    }

    TaskletProgram& p_;
    std::vector<std::optional<Value>> folded_;
    std::vector<bool> folded_known_;
    std::vector<std::vector<bool>> assigned_lanes_;
    int max_reg_ = 0;
};

std::shared_ptr<const TaskletProgram> TaskletProgram::parse(const std::string& code) {
    auto prog = TaskletParser(code).parse();
    // Lower to bytecode once; every later execution reuses the flat program.
    TaskletCompiler compiler(*prog);
    (void)compiler;
    return prog;
}

void TaskletProgram::execute_compiled(Value* slots, Value* regs) const {
    const BCInstr* code = bytecode_.data();
    const std::size_t n = bytecode_.size();
    std::size_t pc = 0;
    while (pc < n) {
        const BCInstr& in = code[pc];
        switch (in.op) {
            case BC::Const: regs[in.dst] = consts_[static_cast<std::size_t>(in.a)]; break;
            case BC::LoadSlot: regs[in.dst] = slots[in.a]; break;
            case BC::StoreSlot: slots[in.a] = regs[in.b]; break;
            case BC::Bool: regs[in.dst] = make_bool(regs[in.a].truthy()); break;
            case BC::Trap:
                throw common::Error("tasklet: unbound connector '" +
                                    var_names_[static_cast<std::size_t>(in.a)] + "'");
            case BC::Jump: pc = static_cast<std::size_t>(in.a); continue;
            case BC::JumpIfFalse:
                if (!regs[in.a].truthy()) { pc = static_cast<std::size_t>(in.b); continue; }
                break;
            case BC::JumpIfTrue:
                if (regs[in.a].truthy()) { pc = static_cast<std::size_t>(in.b); continue; }
                break;
            case BC::Neg: regs[in.dst] = op_neg(regs[in.a]); break;
            case BC::Not: regs[in.dst] = make_bool(!regs[in.a].truthy()); break;
            case BC::Abs: regs[in.dst] = op_abs(regs[in.a]); break;
            case BC::Exp: regs[in.dst] = Value::from_double(std::exp(regs[in.a].as_double())); break;
            case BC::Log: regs[in.dst] = Value::from_double(std::log(regs[in.a].as_double())); break;
            case BC::Sqrt:
                regs[in.dst] = Value::from_double(std::sqrt(regs[in.a].as_double()));
                break;
            case BC::Sin: regs[in.dst] = Value::from_double(std::sin(regs[in.a].as_double())); break;
            case BC::Cos: regs[in.dst] = Value::from_double(std::cos(regs[in.a].as_double())); break;
            case BC::Tanh:
                regs[in.dst] = Value::from_double(std::tanh(regs[in.a].as_double()));
                break;
            case BC::Floor:
                regs[in.dst] = Value::from_double(std::floor(regs[in.a].as_double()));
                break;
            case BC::Ceil:
                regs[in.dst] = Value::from_double(std::ceil(regs[in.a].as_double()));
                break;
            case BC::Add: regs[in.dst] = op_add(regs[in.a], regs[in.b]); break;
            case BC::Sub: regs[in.dst] = op_sub(regs[in.a], regs[in.b]); break;
            case BC::Mul: regs[in.dst] = op_mul(regs[in.a], regs[in.b]); break;
            case BC::Div: regs[in.dst] = op_div(regs[in.a], regs[in.b]); break;
            case BC::Mod: regs[in.dst] = op_mod(regs[in.a], regs[in.b]); break;
            case BC::Lt:
                regs[in.dst] = make_bool(regs[in.a].as_double() < regs[in.b].as_double());
                break;
            case BC::Le:
                regs[in.dst] = make_bool(regs[in.a].as_double() <= regs[in.b].as_double());
                break;
            case BC::Gt:
                regs[in.dst] = make_bool(regs[in.a].as_double() > regs[in.b].as_double());
                break;
            case BC::Ge:
                regs[in.dst] = make_bool(regs[in.a].as_double() >= regs[in.b].as_double());
                break;
            case BC::Eq:
                regs[in.dst] = make_bool(regs[in.a].as_double() == regs[in.b].as_double());
                break;
            case BC::Ne:
                regs[in.dst] = make_bool(regs[in.a].as_double() != regs[in.b].as_double());
                break;
            case BC::Min: regs[in.dst] = op_min(regs[in.a], regs[in.b]); break;
            case BC::Max: regs[in.dst] = op_max(regs[in.a], regs[in.b]); break;
            case BC::Pow:
                regs[in.dst] =
                    Value::from_double(std::pow(regs[in.a].as_double(), regs[in.b].as_double()));
                break;
        }
        ++pc;
    }
}

void TaskletProgram::execute_f64(double* slots, double* regs) const {
    const BCInstr* code = bytecode_.data();
    const std::size_t n = bytecode_.size();
    const double* consts = f64consts_.data();
    std::size_t pc = 0;
    while (pc < n) {
        const BCInstr& in = code[pc];
        switch (in.op) {
            case BC::Const: regs[in.dst] = consts[in.a]; break;
            case BC::LoadSlot: regs[in.dst] = slots[in.a]; break;
            case BC::StoreSlot: slots[in.a] = regs[in.b]; break;
            case BC::Bool: regs[in.dst] = regs[in.a] != 0.0 ? 1.0 : 0.0; break;
            case BC::Trap:
                // Feasibility analysis rejects programs with traps; keep the
                // tagged VM's error for defense in depth.
                throw common::Error("tasklet: unbound connector '" +
                                    var_names_[static_cast<std::size_t>(in.a)] + "'");
            case BC::Jump: pc = static_cast<std::size_t>(in.a); continue;
            case BC::JumpIfFalse:
                if (regs[in.a] == 0.0) { pc = static_cast<std::size_t>(in.b); continue; }
                break;
            case BC::JumpIfTrue:
                if (regs[in.a] != 0.0) { pc = static_cast<std::size_t>(in.b); continue; }
                break;
            case BC::Neg: regs[in.dst] = -regs[in.a]; break;
            case BC::Not: regs[in.dst] = regs[in.a] == 0.0 ? 1.0 : 0.0; break;
            case BC::Abs: regs[in.dst] = std::fabs(regs[in.a]); break;
            case BC::Exp: regs[in.dst] = std::exp(regs[in.a]); break;
            case BC::Log: regs[in.dst] = std::log(regs[in.a]); break;
            case BC::Sqrt: regs[in.dst] = std::sqrt(regs[in.a]); break;
            case BC::Sin: regs[in.dst] = std::sin(regs[in.a]); break;
            case BC::Cos: regs[in.dst] = std::cos(regs[in.a]); break;
            case BC::Tanh: regs[in.dst] = std::tanh(regs[in.a]); break;
            case BC::Floor: regs[in.dst] = std::floor(regs[in.a]); break;
            case BC::Ceil: regs[in.dst] = std::ceil(regs[in.a]); break;
            case BC::Add: regs[in.dst] = regs[in.a] + regs[in.b]; break;
            case BC::Sub: regs[in.dst] = regs[in.a] - regs[in.b]; break;
            case BC::Mul: regs[in.dst] = regs[in.a] * regs[in.b]; break;
            case BC::Div: regs[in.dst] = regs[in.a] / regs[in.b]; break;
            case BC::Mod: regs[in.dst] = std::fmod(regs[in.a], regs[in.b]); break;
            case BC::Lt: regs[in.dst] = regs[in.a] < regs[in.b] ? 1.0 : 0.0; break;
            case BC::Le: regs[in.dst] = regs[in.a] <= regs[in.b] ? 1.0 : 0.0; break;
            case BC::Gt: regs[in.dst] = regs[in.a] > regs[in.b] ? 1.0 : 0.0; break;
            case BC::Ge: regs[in.dst] = regs[in.a] >= regs[in.b] ? 1.0 : 0.0; break;
            case BC::Eq: regs[in.dst] = regs[in.a] == regs[in.b] ? 1.0 : 0.0; break;
            case BC::Ne: regs[in.dst] = regs[in.a] != regs[in.b] ? 1.0 : 0.0; break;
            case BC::Min: regs[in.dst] = std::fmin(regs[in.a], regs[in.b]); break;
            case BC::Max: regs[in.dst] = std::fmax(regs[in.a], regs[in.b]); break;
            case BC::Pow: regs[in.dst] = std::pow(regs[in.a], regs[in.b]); break;
        }
        ++pc;
    }
}

void TaskletProgram::execute_i64(std::int64_t* slots, std::int64_t* regs) const {
    // Untagged int64 twin of execute_compiled: feasibility (has_i64_variant)
    // proved every runtime value stays integer-tagged, so each opcode mirrors
    // the tagged VM's int path exactly.  Comparisons go through double
    // conversion because the tagged VM compares as_double() — identical for
    // every operand, including magnitudes past 2^53 where the conversion
    // rounds (both engines then compare the same rounded doubles).
    const BCInstr* code = bytecode_.data();
    const std::size_t n = bytecode_.size();
    const std::int64_t* consts = i64consts_.data();
    std::size_t pc = 0;
    while (pc < n) {
        const BCInstr& in = code[pc];
        switch (in.op) {
            case BC::Const: regs[in.dst] = consts[in.a]; break;
            case BC::LoadSlot: regs[in.dst] = slots[in.a]; break;
            case BC::StoreSlot: slots[in.a] = regs[in.b]; break;
            case BC::Bool: regs[in.dst] = regs[in.a] != 0 ? 1 : 0; break;
            case BC::Trap:
                // Feasibility rejects traps; keep the tagged VM's error for
                // defense in depth.
                throw common::Error("tasklet: unbound connector '" +
                                    var_names_[static_cast<std::size_t>(in.a)] + "'");
            case BC::Jump: pc = static_cast<std::size_t>(in.a); continue;
            case BC::JumpIfFalse:
                if (regs[in.a] == 0) { pc = static_cast<std::size_t>(in.b); continue; }
                break;
            case BC::JumpIfTrue:
                if (regs[in.a] != 0) { pc = static_cast<std::size_t>(in.b); continue; }
                break;
            case BC::Neg: regs[in.dst] = -regs[in.a]; break;
            case BC::Not: regs[in.dst] = regs[in.a] == 0 ? 1 : 0; break;
            case BC::Abs: regs[in.dst] = regs[in.a] < 0 ? -regs[in.a] : regs[in.a]; break;
            case BC::Exp: case BC::Log: case BC::Sqrt: case BC::Sin: case BC::Cos:
            case BC::Tanh: case BC::Floor: case BC::Ceil: case BC::Pow:
                throw common::Error("tasklet: i64 engine reached a float opcode");
            case BC::Add: regs[in.dst] = regs[in.a] + regs[in.b]; break;
            case BC::Sub: regs[in.dst] = regs[in.a] - regs[in.b]; break;
            case BC::Mul: regs[in.dst] = regs[in.a] * regs[in.b]; break;
            case BC::Div: regs[in.dst] = sym::floordiv_i64(regs[in.a], regs[in.b]); break;
            case BC::Mod: regs[in.dst] = sym::floormod_i64(regs[in.a], regs[in.b]); break;
            case BC::Lt:
                regs[in.dst] =
                    static_cast<double>(regs[in.a]) < static_cast<double>(regs[in.b]) ? 1 : 0;
                break;
            case BC::Le:
                regs[in.dst] =
                    static_cast<double>(regs[in.a]) <= static_cast<double>(regs[in.b]) ? 1 : 0;
                break;
            case BC::Gt:
                regs[in.dst] =
                    static_cast<double>(regs[in.a]) > static_cast<double>(regs[in.b]) ? 1 : 0;
                break;
            case BC::Ge:
                regs[in.dst] =
                    static_cast<double>(regs[in.a]) >= static_cast<double>(regs[in.b]) ? 1 : 0;
                break;
            case BC::Eq:
                regs[in.dst] =
                    static_cast<double>(regs[in.a]) == static_cast<double>(regs[in.b]) ? 1 : 0;
                break;
            case BC::Ne:
                regs[in.dst] =
                    static_cast<double>(regs[in.a]) != static_cast<double>(regs[in.b]) ? 1 : 0;
                break;
            case BC::Min: regs[in.dst] = std::min(regs[in.a], regs[in.b]); break;
            case BC::Max: regs[in.dst] = std::max(regs[in.a], regs[in.b]); break;
        }
        ++pc;
    }
}

// --- Batched (segment) execution ---------------------------------------------
//
// Vertical twins of the untagged engines for straight-line programs: one
// pass over the bytecode, each instruction executing as a tight loop over a
// column of `n` lanes.  The loops carry no cross-lane dependencies and no
// branches, so the compiler auto-vectorizes them — this is the inner loop of
// the interpreter's segment kernels.  Straight-line bytecode has no jumps or
// traps by definition (is_straightline), so pc only ever advances.

void TaskletProgram::execute_f64_batch(double* slots, double* regs, std::int64_t n) const {
    for (const BCInstr& in : bytecode_) {
        double* d = regs + static_cast<std::int64_t>(in.dst) * n;
        const double* a = regs + static_cast<std::int64_t>(in.a) * n;
        const double* b = regs + static_cast<std::int64_t>(in.b) * n;
        switch (in.op) {
            case BC::Const: {
                const double c = f64consts_[static_cast<std::size_t>(in.a)];
                for (std::int64_t j = 0; j < n; ++j) d[j] = c;
                break;
            }
            case BC::LoadSlot: {
                const double* src = slots + static_cast<std::int64_t>(in.a) * n;
                for (std::int64_t j = 0; j < n; ++j) d[j] = src[j];
                break;
            }
            case BC::StoreSlot: {
                double* dst = slots + static_cast<std::int64_t>(in.a) * n;
                for (std::int64_t j = 0; j < n; ++j) dst[j] = b[j];
                break;
            }
            case BC::Bool:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] != 0.0 ? 1.0 : 0.0;
                break;
            case BC::Trap: case BC::Jump: case BC::JumpIfFalse: case BC::JumpIfTrue:
                throw common::Error("tasklet: batch engine on non-straight-line program");
            case BC::Neg:
                for (std::int64_t j = 0; j < n; ++j) d[j] = -a[j];
                break;
            case BC::Not:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] == 0.0 ? 1.0 : 0.0;
                break;
            case BC::Abs:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::fabs(a[j]);
                break;
            case BC::Exp:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::exp(a[j]);
                break;
            case BC::Log:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::log(a[j]);
                break;
            case BC::Sqrt:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::sqrt(a[j]);
                break;
            case BC::Sin:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::sin(a[j]);
                break;
            case BC::Cos:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::cos(a[j]);
                break;
            case BC::Tanh:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::tanh(a[j]);
                break;
            case BC::Floor:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::floor(a[j]);
                break;
            case BC::Ceil:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::ceil(a[j]);
                break;
            case BC::Add:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] + b[j];
                break;
            case BC::Sub:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] - b[j];
                break;
            case BC::Mul:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] * b[j];
                break;
            case BC::Div:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] / b[j];
                break;
            case BC::Mod:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::fmod(a[j], b[j]);
                break;
            case BC::Lt:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] < b[j] ? 1.0 : 0.0;
                break;
            case BC::Le:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] <= b[j] ? 1.0 : 0.0;
                break;
            case BC::Gt:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] > b[j] ? 1.0 : 0.0;
                break;
            case BC::Ge:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] >= b[j] ? 1.0 : 0.0;
                break;
            case BC::Eq:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] == b[j] ? 1.0 : 0.0;
                break;
            case BC::Ne:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] != b[j] ? 1.0 : 0.0;
                break;
            case BC::Min:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::fmin(a[j], b[j]);
                break;
            case BC::Max:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::fmax(a[j], b[j]);
                break;
            case BC::Pow:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::pow(a[j], b[j]);
                break;
        }
    }
}

void TaskletProgram::execute_i64_batch(std::int64_t* slots, std::int64_t* regs,
                                       std::int64_t n) const {
    for (const BCInstr& in : bytecode_) {
        std::int64_t* d = regs + static_cast<std::int64_t>(in.dst) * n;
        const std::int64_t* a = regs + static_cast<std::int64_t>(in.a) * n;
        const std::int64_t* b = regs + static_cast<std::int64_t>(in.b) * n;
        switch (in.op) {
            case BC::Const: {
                const std::int64_t c = i64consts_[static_cast<std::size_t>(in.a)];
                for (std::int64_t j = 0; j < n; ++j) d[j] = c;
                break;
            }
            case BC::LoadSlot: {
                const std::int64_t* src = slots + static_cast<std::int64_t>(in.a) * n;
                for (std::int64_t j = 0; j < n; ++j) d[j] = src[j];
                break;
            }
            case BC::StoreSlot: {
                std::int64_t* dst = slots + static_cast<std::int64_t>(in.a) * n;
                for (std::int64_t j = 0; j < n; ++j) dst[j] = b[j];
                break;
            }
            case BC::Bool:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] != 0 ? 1 : 0;
                break;
            case BC::Trap: case BC::Jump: case BC::JumpIfFalse: case BC::JumpIfTrue:
                throw common::Error("tasklet: batch engine on non-straight-line program");
            case BC::Exp: case BC::Log: case BC::Sqrt: case BC::Sin: case BC::Cos:
            case BC::Tanh: case BC::Floor: case BC::Ceil: case BC::Pow:
                throw common::Error("tasklet: i64 engine reached a float opcode");
            case BC::Neg:
                for (std::int64_t j = 0; j < n; ++j) d[j] = -a[j];
                break;
            case BC::Not:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] == 0 ? 1 : 0;
                break;
            case BC::Abs:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] < 0 ? -a[j] : a[j];
                break;
            case BC::Add:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] + b[j];
                break;
            case BC::Sub:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] - b[j];
                break;
            case BC::Mul:
                for (std::int64_t j = 0; j < n; ++j) d[j] = a[j] * b[j];
                break;
            case BC::Div:
                // Unreachable from segment kernels (classification requires
                // throw-free programs); kept exact for direct callers.
                for (std::int64_t j = 0; j < n; ++j) d[j] = sym::floordiv_i64(a[j], b[j]);
                break;
            case BC::Mod:
                for (std::int64_t j = 0; j < n; ++j) d[j] = sym::floormod_i64(a[j], b[j]);
                break;
            case BC::Lt:
                for (std::int64_t j = 0; j < n; ++j)
                    d[j] = static_cast<double>(a[j]) < static_cast<double>(b[j]) ? 1 : 0;
                break;
            case BC::Le:
                for (std::int64_t j = 0; j < n; ++j)
                    d[j] = static_cast<double>(a[j]) <= static_cast<double>(b[j]) ? 1 : 0;
                break;
            case BC::Gt:
                for (std::int64_t j = 0; j < n; ++j)
                    d[j] = static_cast<double>(a[j]) > static_cast<double>(b[j]) ? 1 : 0;
                break;
            case BC::Ge:
                for (std::int64_t j = 0; j < n; ++j)
                    d[j] = static_cast<double>(a[j]) >= static_cast<double>(b[j]) ? 1 : 0;
                break;
            case BC::Eq:
                for (std::int64_t j = 0; j < n; ++j)
                    d[j] = static_cast<double>(a[j]) == static_cast<double>(b[j]) ? 1 : 0;
                break;
            case BC::Ne:
                for (std::int64_t j = 0; j < n; ++j)
                    d[j] = static_cast<double>(a[j]) != static_cast<double>(b[j]) ? 1 : 0;
                break;
            case BC::Min:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::min(a[j], b[j]);
                break;
            case BC::Max:
                for (std::int64_t j = 0; j < n; ++j) d[j] = std::max(a[j], b[j]);
                break;
        }
    }
}

void TaskletProgram::execute_compiled(ConnectorEnv& env) const {
    // Same input contract as the reference engine.
    for (const auto& [name, width] : reads_) {
        auto it = env.find(name);
        if (it == env.end() || it->second.size() < static_cast<std::size_t>(width))
            throw common::Error("tasklet: missing input connector '" + name + "'");
    }
    std::vector<Value> slots(static_cast<std::size_t>(slot_count_));
    std::vector<Value> regs(static_cast<std::size_t>(reg_count_));
    for (const SlotDesc& sd : slot_table_) {
        auto it = env.find(sd.name);
        if (it == env.end()) continue;
        const std::size_t lanes =
            std::min(it->second.size(), static_cast<std::size_t>(sd.width));
        for (std::size_t l = 0; l < lanes; ++l)
            slots[static_cast<std::size_t>(sd.base) + l] = it->second[l];
    }
    execute_compiled(slots.data(), regs.data());
    for (const SlotDesc& sd : slot_table_) {
        if (!sd.is_output) continue;
        auto& vec = env[sd.name];
        const std::size_t width = static_cast<std::size_t>(writes_.at(sd.name));
        if (vec.size() < width) vec.resize(width);
        for (std::size_t l = 0; l < width; ++l)
            vec[l] = slots[static_cast<std::size_t>(sd.base) + l];
    }
}

}  // namespace ff::interp
