#include "interp/tasklet_lang.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <set>

#include "common/error.h"
#include "symbolic/expr.h"

namespace ff::interp {

using common::ParseError;

/// Recursive-descent parser for the tasklet grammar (see header).
class TaskletParser {
public:
    explicit TaskletParser(const std::string& text) : text_(text) {}

    std::shared_ptr<TaskletProgram> parse() {
        auto prog = std::shared_ptr<TaskletProgram>(new TaskletProgram());
        prog_ = prog.get();
        prog_->source_ = text_;

        while (true) {
            skip_ws();
            if (pos_ >= text_.size()) break;
            statement();
            skip_ws();
            if (pos_ < text_.size()) {
                if (text_[pos_] == ';') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '\n') {
                    ++pos_;
                    continue;
                }
                fail("expected ';' between statements");
            }
        }
        if (prog_->stmts_.empty()) fail("empty tasklet");
        finalize_connectors();
        return prog;
    }

private:
    [[noreturn]] void fail(const std::string& msg) {
        throw ParseError("tasklet '" + text_ + "' at offset " + std::to_string(pos_) + ": " + msg);
    }

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool eat(char c) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool eat2(const char* two) {
        skip_ws();
        if (pos_ + 1 < text_.size() && text_[pos_] == two[0] && text_[pos_ + 1] == two[1]) {
            pos_ += 2;
            return true;
        }
        return false;
    }

    char peek() {
        skip_ws();
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    std::string ident() {
        skip_ws();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
            ++pos_;
        if (start == pos_) fail("expected identifier");
        return std::string(text_.substr(start, pos_ - start));
    }

    int var_index(const std::string& name) {
        for (std::size_t i = 0; i < prog_->var_names_.size(); ++i)
            if (prog_->var_names_[i] == name) return static_cast<int>(i);
        prog_->var_names_.push_back(name);
        return static_cast<int>(prog_->var_names_.size() - 1);
    }

    int lane_suffix() {
        // Optional constant [k] lane index.
        if (!eat('[')) return 0;
        skip_ws();
        std::size_t start = pos_;
        while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
        if (start == pos_) fail("expected constant lane index");
        int lane = 0;
        std::from_chars(text_.data() + start, text_.data() + pos_, lane);
        if (!eat(']')) fail("expected ']'");
        return lane;
    }

    void statement() {
        const std::string name = ident();
        const int lane = peek() == '[' ? lane_suffix() : 0;
        if (!eat('=')) fail("expected '=' in assignment");
        const int root = expr();
        const int vi = var_index(name);
        note_write(vi, lane);
        prog_->stmts_.push_back(TaskletProgram::Stmt{vi, lane, root});
    }

    // --- Expression grammar ---

    int add_node(TaskletProgram::Node n) {
        prog_->nodes_.push_back(n);
        return static_cast<int>(prog_->nodes_.size() - 1);
    }

    int expr() { return ternary(); }

    int ternary() {
        int cond = logical_or();
        if (eat('?')) {
            int a = expr();
            if (!eat(':')) fail("expected ':' in ternary");
            int b = expr();
            TaskletProgram::Node n;
            n.op = TaskletProgram::Op::Ternary;
            n.a = cond; n.b = a; n.c = b;
            return add_node(n);
        }
        return cond;
    }

    int logical_or() {
        int lhs = logical_and();
        while (eat2("||")) lhs = binop(TaskletProgram::Op::Or, lhs, logical_and());
        return lhs;
    }

    int logical_and() {
        int lhs = comparison();
        while (eat2("&&")) lhs = binop(TaskletProgram::Op::And, lhs, comparison());
        return lhs;
    }

    int comparison() {
        int lhs = additive();
        if (eat2("<=")) return binop(TaskletProgram::Op::Le, lhs, additive());
        if (eat2(">=")) return binop(TaskletProgram::Op::Ge, lhs, additive());
        if (eat2("==")) return binop(TaskletProgram::Op::Eq, lhs, additive());
        if (eat2("!=")) return binop(TaskletProgram::Op::Ne, lhs, additive());
        if (peek() == '<') { ++pos_; return binop(TaskletProgram::Op::Lt, lhs, additive()); }
        if (peek() == '>') { ++pos_; return binop(TaskletProgram::Op::Gt, lhs, additive()); }
        return lhs;
    }

    int additive() {
        int lhs = multiplicative();
        while (true) {
            if (eat('+')) lhs = binop(TaskletProgram::Op::Add, lhs, multiplicative());
            else if (peek() == '-') { ++pos_; lhs = binop(TaskletProgram::Op::Sub, lhs, multiplicative()); }
            else break;
        }
        return lhs;
    }

    int multiplicative() {
        int lhs = unary();
        while (true) {
            if (eat('*')) lhs = binop(TaskletProgram::Op::Mul, lhs, unary());
            else if (eat('/')) lhs = binop(TaskletProgram::Op::Div, lhs, unary());
            else if (eat('%')) lhs = binop(TaskletProgram::Op::Mod, lhs, unary());
            else break;
        }
        return lhs;
    }

    int unary() {
        if (peek() == '-') {
            ++pos_;
            TaskletProgram::Node n;
            n.op = TaskletProgram::Op::Neg;
            n.a = unary();
            return add_node(n);
        }
        if (peek() == '!') {
            ++pos_;
            TaskletProgram::Node n;
            n.op = TaskletProgram::Op::Not;
            n.a = unary();
            return add_node(n);
        }
        return primary();
    }

    int binop(TaskletProgram::Op op, int a, int b) {
        TaskletProgram::Node n;
        n.op = op;
        n.a = a;
        n.b = b;
        return add_node(n);
    }

    int primary() {
        skip_ws();
        if (pos_ >= text_.size()) fail("unexpected end of tasklet");
        const char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') return number();
        if (c == '(') {
            ++pos_;
            int e = expr();
            if (!eat(')')) fail("expected ')'");
            return e;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            const std::string name = ident();
            if (peek() == '(') return function_call(name);
            const int lane = peek() == '[' ? lane_suffix() : 0;
            const int vi = var_index(name);
            note_read(vi, lane);
            TaskletProgram::Node n;
            n.op = TaskletProgram::Op::Load;
            n.var = vi;
            n.lane = lane;
            return add_node(n);
        }
        fail("unexpected character");
    }

    int number() {
        skip_ws();
        std::size_t start = pos_;
        bool is_float = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) { ++pos_; continue; }
            if (c == '.' || c == 'e' || c == 'E') { is_float = true; ++pos_; continue; }
            if ((c == '+' || c == '-') && pos_ > start &&
                (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) { ++pos_; continue; }
            break;
        }
        const std::string_view tok(text_.data() + start, pos_ - start);
        TaskletProgram::Node n;
        if (is_float) {
            n.op = TaskletProgram::Op::ConstF;
            double d = 0;
            auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
            if (ec != std::errc()) fail("bad number");
            (void)p;
            n.fval = d;
        } else {
            n.op = TaskletProgram::Op::ConstI;
            std::int64_t v = 0;
            auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
            if (ec != std::errc()) fail("bad number");
            (void)p;
            n.ival = v;
        }
        return add_node(n);
    }

    int function_call(const std::string& name) {
        using Op = TaskletProgram::Op;
        struct Fn { const char* name; Op op; int arity; };
        static constexpr Fn kFns[] = {
            {"min", Op::Min, 2},   {"max", Op::Max, 2},   {"abs", Op::Abs, 1},
            {"exp", Op::Exp, 1},   {"log", Op::Log, 1},   {"sqrt", Op::Sqrt, 1},
            {"sin", Op::Sin, 1},   {"cos", Op::Cos, 1},   {"tanh", Op::Tanh, 1},
            {"pow", Op::Pow, 2},   {"floor", Op::Floor, 1}, {"ceil", Op::Ceil, 1},
            {"select", Op::Select, 3},
        };
        const Fn* fn = nullptr;
        for (const Fn& f : kFns)
            if (name == f.name) { fn = &f; break; }
        if (!fn) fail("unknown function: " + name);
        if (!eat('(')) fail("expected '('");
        TaskletProgram::Node n;
        n.op = fn->op;
        n.a = expr();
        if (fn->arity >= 2) {
            if (!eat(',')) fail("expected ','");
            n.b = expr();
        }
        if (fn->arity >= 3) {
            if (!eat(',')) fail("expected ','");
            n.c = expr();
        }
        if (!eat(')')) fail("expected ')'");
        return add_node(n);
    }

    // --- Connector classification ---

    void note_read(int var, int lane) {
        const std::string& name = prog_->var_names_[static_cast<std::size_t>(var)];
        if (assigned_.count(name)) return;  // local: assigned earlier in program order
        auto& width = pending_reads_[name];
        width = std::max(width, lane + 1);
    }

    void note_write(int var, int lane) {
        const std::string& name = prog_->var_names_[static_cast<std::size_t>(var)];
        assigned_.insert(name);
        auto& width = pending_writes_[name];
        width = std::max(width, lane + 1);
    }

    void finalize_connectors() {
        prog_->reads_ = pending_reads_;
        prog_->writes_ = pending_writes_;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
    TaskletProgram* prog_ = nullptr;
    std::set<std::string> assigned_;
    std::map<std::string, int> pending_reads_;
    std::map<std::string, int> pending_writes_;
};

std::shared_ptr<const TaskletProgram> TaskletProgram::parse(const std::string& code) {
    return TaskletParser(code).parse();
}

namespace {

inline Value make_bool(bool b) { return Value::from_int(b ? 1 : 0); }

}  // namespace

Value TaskletProgram::eval(int node, const std::vector<std::vector<Value>*>& slots) const {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    switch (n.op) {
        case Op::ConstF: return Value::from_double(n.fval);
        case Op::ConstI: return Value::from_int(n.ival);
        case Op::Load: {
            const std::vector<Value>* slot = slots[static_cast<std::size_t>(n.var)];
            if (!slot || static_cast<std::size_t>(n.lane) >= slot->size())
                throw common::Error("tasklet: unbound connector '" +
                                    var_names_[static_cast<std::size_t>(n.var)] + "'");
            return (*slot)[static_cast<std::size_t>(n.lane)];
        }
        case Op::Neg: {
            Value a = eval(n.a, slots);
            return a.is_float ? Value::from_double(-a.f) : Value::from_int(-a.i);
        }
        case Op::Not: return make_bool(!eval(n.a, slots).truthy());
        default: break;
    }

    // Binary and ternary operators.
    if (n.op == Op::Ternary)
        return eval(n.a, slots).truthy() ? eval(n.b, slots) : eval(n.c, slots);
    if (n.op == Op::Select)
        return eval(n.a, slots).truthy() ? eval(n.b, slots) : eval(n.c, slots);
    if (n.op == Op::And) {
        // Short-circuiting.
        if (!eval(n.a, slots).truthy()) return make_bool(false);
        return make_bool(eval(n.b, slots).truthy());
    }
    if (n.op == Op::Or) {
        if (eval(n.a, slots).truthy()) return make_bool(true);
        return make_bool(eval(n.b, slots).truthy());
    }

    const Value a = eval(n.a, slots);
    // Unary float functions.
    switch (n.op) {
        case Op::Abs:
            return a.is_float ? Value::from_double(std::fabs(a.f))
                              : Value::from_int(a.i < 0 ? -a.i : a.i);
        case Op::Exp: return Value::from_double(std::exp(a.as_double()));
        case Op::Log: return Value::from_double(std::log(a.as_double()));
        case Op::Sqrt: return Value::from_double(std::sqrt(a.as_double()));
        case Op::Sin: return Value::from_double(std::sin(a.as_double()));
        case Op::Cos: return Value::from_double(std::cos(a.as_double()));
        case Op::Tanh: return Value::from_double(std::tanh(a.as_double()));
        case Op::Floor: return Value::from_double(std::floor(a.as_double()));
        case Op::Ceil: return Value::from_double(std::ceil(a.as_double()));
        default: break;
    }

    const Value b = eval(n.b, slots);
    const bool flt = a.is_float || b.is_float;
    switch (n.op) {
        case Op::Add:
            return flt ? Value::from_double(a.as_double() + b.as_double())
                       : Value::from_int(a.i + b.i);
        case Op::Sub:
            return flt ? Value::from_double(a.as_double() - b.as_double())
                       : Value::from_int(a.i - b.i);
        case Op::Mul:
            return flt ? Value::from_double(a.as_double() * b.as_double())
                       : Value::from_int(a.i * b.i);
        case Op::Div:
            if (flt) return Value::from_double(a.as_double() / b.as_double());
            return Value::from_int(sym::floordiv_i64(a.i, b.i));
        case Op::Mod:
            if (flt) return Value::from_double(std::fmod(a.as_double(), b.as_double()));
            return Value::from_int(sym::floormod_i64(a.i, b.i));
        case Op::Lt: return make_bool(a.as_double() < b.as_double());
        case Op::Le: return make_bool(a.as_double() <= b.as_double());
        case Op::Gt: return make_bool(a.as_double() > b.as_double());
        case Op::Ge: return make_bool(a.as_double() >= b.as_double());
        case Op::Eq: return make_bool(a.as_double() == b.as_double());
        case Op::Ne: return make_bool(a.as_double() != b.as_double());
        case Op::Min:
            return flt ? Value::from_double(std::fmin(a.as_double(), b.as_double()))
                       : Value::from_int(std::min(a.i, b.i));
        case Op::Max:
            return flt ? Value::from_double(std::fmax(a.as_double(), b.as_double()))
                       : Value::from_int(std::max(a.i, b.i));
        case Op::Pow: return Value::from_double(std::pow(a.as_double(), b.as_double()));
        default: break;
    }
    throw common::Error("tasklet: unhandled op");
}

void TaskletProgram::execute(ConnectorEnv& env) const {
    // Bind variable slots once: var index -> env entry.
    std::vector<std::vector<Value>*> slots(var_names_.size(), nullptr);
    for (std::size_t i = 0; i < var_names_.size(); ++i) {
        auto it = env.find(var_names_[i]);
        if (it != env.end()) slots[i] = &it->second;
    }
    // Check declared inputs.
    for (const auto& [name, width] : reads_) {
        auto it = env.find(name);
        if (it == env.end() || it->second.size() < static_cast<std::size_t>(width))
            throw common::Error("tasklet: missing input connector '" + name + "'");
    }
    for (const Stmt& s : stmts_) {
        const Value v = eval(s.expr, slots);
        const std::string& name = var_names_[static_cast<std::size_t>(s.var)];
        auto& slot = env[name];  // std::map: stable addresses on insert
        if (slot.size() <= static_cast<std::size_t>(s.lane))
            slot.resize(static_cast<std::size_t>(s.lane) + 1);
        slot[static_cast<std::size_t>(s.lane)] = v;
        slots[static_cast<std::size_t>(s.var)] = &slot;
    }
}

}  // namespace ff::interp
