// Native implementations of coarse-grained library nodes.
//
// These stand in for the BLAS/library calls of the paper's workloads (e.g.
// the MKL-accelerated batched contractions of the BERT encoder, Sec. 6.1).
// Operand shapes are taken from the concretized memlet subsets.
#pragma once

#include "interp/interpreter.h"

namespace ff::interp {

/// Executes a Library node; throws on shape mismatch (reported as a crash
/// by the interpreter's run loop).
void execute_library(Interpreter& interp, const ir::SDFG& sdfg, const ir::State& state,
                     ir::NodeId node, Context& ctx);

}  // namespace ff::interp
