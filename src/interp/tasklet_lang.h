// The tasklet mini-language.
//
// Tasklets are the leaf computations of the dataflow graph.  Their code is a
// short sequence of assignments over scalar (or short fixed-width vector)
// connectors, e.g.:
//
//     out = cin + a * b
//     v[0] = a[0] * s; v[1] = a[1] * s       (vectorized form)
//     y = x > 0 ? x : 0
//
// Connectors bind to memlets on the enclosing graph edges.  Variables read
// before being assigned are *input* connectors; variables ever assigned are
// *output* connectors (assigned-then-read names are locals and outputs).
//
// Numeric model: a value is either double or int64.  Mixed arithmetic
// promotes to double; integer division/modulo use floor semantics to agree
// with the symbolic layer.  Comparisons and logical operators yield int 0/1.
//
// Execution engines (one program, two implementations):
//
//  * Reference: a recursive AST walker (`execute`) over a string-keyed
//    ConnectorEnv.  Kept as the semantic ground truth for differential
//    testing and selectable via ExecConfig::use_compiled_tasklets = false.
//  * Compiled: at parse time every program is lowered to a flat bytecode
//    register program (`execute_compiled`).  Lowering constant-folds pure
//    subexpressions, resolves every connector reference to a fixed *slot*
//    index (no string lookups at runtime), lowers short-circuit && / || and
//    ternaries to conditional jumps, and turns statically-detectable
//    unbound-lane reads into trap instructions so both engines fail
//    identically.  The VM runs against caller-provided flat Value arrays
//    (slots + registers) and performs no heap allocation — this is the
//    innermost loop of every fuzzing trial (one execution per map point).
//
// Programs are parsed once and cached by the interpreter.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ff::interp {

/// A scalar runtime value: double or int64.
struct Value {
    bool is_float = true;
    double f = 0.0;
    std::int64_t i = 0;

    static Value from_double(double d) { return Value{true, d, 0}; }
    static Value from_int(std::int64_t v) { return Value{false, 0.0, v}; }

    double as_double() const { return is_float ? f : static_cast<double>(i); }
    std::int64_t as_int() const { return is_float ? static_cast<std::int64_t>(f) : i; }
    bool truthy() const { return is_float ? f != 0.0 : i != 0; }
};

/// Connector storage during one tasklet execution: name -> lane values.
/// Used by the reference engine and by tests; the compiled engine replaces
/// it with a flat slot array.
using ConnectorEnv = std::map<std::string, std::vector<Value>>;

/// One connector (or local) of a compiled program: its contiguous lane
/// range [base, base + width) in the flat slot array.
struct SlotDesc {
    std::string name;
    int base = 0;
    int width = 1;
    bool is_input = false;   ///< Read before ever being assigned.
    bool is_output = false;  ///< Assigned somewhere in the program.
};

/// A parsed, immutable tasklet program.
class TaskletProgram {
public:
    /// Parses `code` and lowers it to bytecode; throws common::ParseError.
    static std::shared_ptr<const TaskletProgram> parse(const std::string& code);

    /// Input connectors: name -> width (1 for scalars).
    const std::map<std::string, int>& reads() const { return reads_; }
    /// Output connectors: name -> width.
    const std::map<std::string, int>& writes() const { return writes_; }

    /// Reference engine: executes the program by walking the AST.  `env`
    /// must contain every input connector with at least the declared width;
    /// outputs are created/overwritten.  Throws common::Error on missing
    /// inputs.
    void execute(ConnectorEnv& env) const;

    // --- Compiled engine ---

    /// Slot layout: every variable (inputs, outputs, locals) occupies a
    /// contiguous lane range in the flat slot array.
    const std::vector<SlotDesc>& slot_table() const { return slot_table_; }
    /// Size of the flat slot array `execute_compiled` operates on.
    int slot_count() const { return slot_count_; }
    /// Number of scratch registers the VM needs.
    int reg_count() const { return reg_count_; }

    /// Runs the bytecode program.  `slots` must hold slot_count() values
    /// with all input lanes pre-loaded (output/local lanes zeroed);
    /// `regs` must hold reg_count() values (contents ignored).  Performs no
    /// heap allocation.
    void execute_compiled(Value* slots, Value* regs) const;

    /// Convenience wrapper driving the bytecode VM from a ConnectorEnv
    /// (marshals in/out; used by tests to compare engines).  Semantics match
    /// `execute`, including missing-input errors.
    void execute_compiled(ConnectorEnv& env) const;

    // --- Untagged f64 engine ---

    /// Whether the untagged double-only variant of this program exists.
    ///
    /// At parse time an abstract interpretation over the bytecode decides
    /// whether — assuming every input lane arrives as a double, which the
    /// interpreter guarantees by selecting this engine only for tasklets
    /// whose connectors all bind F64 containers — representing every runtime
    /// value as a raw double is bit-identical to the tagged VM.  The checks:
    /// no trap instructions; no Div/Mod whose operands could both be integers
    /// (those take the floor-semantics int path in the tagged VM); and no
    /// integer intermediate whose magnitude could exceed 2^50 (doubles
    /// represent such values exactly, so int and double arithmetic agree).
    /// Comparisons, min/max and promotions already evaluate through
    /// as_double() in the tagged VM, so 0/1 booleans and small integer
    /// constants are representation-equivalent.
    bool has_f64_variant() const { return f64_feasible_; }

    /// Runs the untagged variant: same slot/register layout and bytecode as
    /// execute_compiled, but `slots`/`regs` are raw doubles and no opcode
    /// dispatches on a value tag.  Only valid when has_f64_variant().
    void execute_f64(double* slots, double* regs) const;

    // --- Untagged i64 engine ---

    /// Whether the untagged int64-only variant of this program exists.
    ///
    /// The dual of has_f64_variant for integer-family containers: assuming
    /// every input lane arrives as an int64 (the interpreter selects this
    /// engine only for tasklets whose input connectors all bind I64/I32
    /// containers), every runtime value provably stays integer-tagged in the
    /// tagged VM — so representing it as a raw int64 is bit-identical.  The
    /// checks: no trap instructions, no float constants, and no
    /// float-producing opcode (exp/log/sqrt/sin/cos/tanh/floor/ceil/pow).
    /// Add/Sub/Mul/Min/Max/Neg/Abs on two ints stay int; comparisons and
    /// logic yield int 0/1; Div/Mod take the tagged VM's floor-semantics int
    /// path, which execute_i64 mirrors including the divide-by-zero throw.
    /// Comparisons in the tagged VM go through as_double(), so execute_i64
    /// compares the double conversions — identical for any operand values.
    bool has_i64_variant() const { return i64_feasible_; }

    /// Runs the untagged int64 variant: raw int64 slots/registers, no value
    /// tags.  Only valid when has_i64_variant().  Throws common::Error on
    /// integer division/modulo by zero, exactly like the tagged VM.
    void execute_i64(std::int64_t* slots, std::int64_t* regs) const;

    // --- Batched (segment) execution ---

    /// Whether the bytecode is straight-line: no jump, no conditional jump,
    /// no trap.  Only straight-line programs can execute vertically (one
    /// instruction over a whole lane batch), so the interpreter's segment
    /// kernels require this in addition to an untagged variant.
    bool is_straightline() const { return straightline_; }

    /// Vertical twin of execute_f64 for straight-line programs: `slots` and
    /// `regs` are arrays of `n`-element columns (slot s occupies
    /// slots[s*n .. s*n+n)), and every instruction executes as one loop over
    /// the batch — the auto-vectorizable inner loops of the segment tier.
    /// Only valid when has_f64_variant() && is_straightline().
    void execute_f64_batch(double* slots, double* regs, std::int64_t n) const;

    /// Vertical twin of execute_i64 (same column layout).  Only valid when
    /// has_i64_variant() && is_straightline().
    void execute_i64_batch(std::int64_t* slots, std::int64_t* regs, std::int64_t n) const;

    /// Connectors for which the compiler emitted unbound-lane traps (a read
    /// of a non-input lane no earlier statement assigns).  The interpreter
    /// falls back to the reference engine when a graph edge binds one of
    /// these at runtime — only then could the reference engine succeed.
    const std::vector<std::string>& trap_connectors() const { return trap_connectors_; }

    /// Whether the bytecode contains any division/modulo instruction — the
    /// only opcodes (besides traps) that can throw at runtime (integer
    /// division by zero).  Kernel classification uses this to prove a
    /// tasklet's inner loop throw-free.
    bool has_div_mod() const { return has_div_mod_; }

    const std::string& source() const { return source_; }

private:
    TaskletProgram() = default;

    // Compact AST in an index-based arena (reference engine + compiler input).
    enum class Op : std::uint8_t {
        ConstF, ConstI, Load,              // leaf
        Neg, Not,                          // unary
        Add, Sub, Mul, Div, Mod,           // arithmetic
        Lt, Le, Gt, Ge, Eq, Ne,            // comparison
        And, Or,                           // logical
        Ternary,                           // cond ? a : b
        Min, Max, Abs, Exp, Log, Sqrt,     // functions
        Sin, Cos, Tanh, Pow, Floor, Ceil,
        Select,                            // select(cond, a, b)
    };
    struct Node {
        Op op;
        double fval = 0.0;
        std::int64_t ival = 0;
        int var = -1;   // index into var_names_ for Load
        int lane = 0;   // lane for Load
        int a = -1, b = -1, c = -1;  // child node indices
    };
    struct Stmt {
        int var;   // index into var_names_
        int lane;
        int expr;  // root node index
    };

    // Bytecode: a flat register program.  Operands are register indices
    // except where noted; jump targets are instruction indices.
    enum class BC : std::uint8_t {
        Const,        // regs[dst] = consts[a]
        LoadSlot,     // regs[dst] = slots[a]
        StoreSlot,    // slots[a] = regs[b]
        Bool,         // regs[dst] = truthy(regs[a]) as int 0/1
        Trap,         // throw unbound-connector error for var_names_[a]
        Jump,         // pc = a
        JumpIfFalse,  // if !truthy(regs[a]) pc = b
        JumpIfTrue,   // if truthy(regs[a]) pc = b
        Neg, Not, Abs, Exp, Log, Sqrt, Sin, Cos, Tanh, Floor, Ceil,  // regs[dst] = op(regs[a])
        Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq, Ne,  // regs[dst] = op(regs[a], regs[b])
        Min, Max, Pow,
    };
    struct BCInstr {
        BC op;
        std::int32_t dst = 0;
        std::int32_t a = 0;
        std::int32_t b = 0;
    };

    Value eval(int node, const std::vector<std::vector<Value>*>& slots) const;

    std::string source_;
    std::vector<Node> nodes_;
    std::vector<Stmt> stmts_;
    std::vector<std::string> var_names_;
    std::map<std::string, int> reads_;
    std::map<std::string, int> writes_;

    // Compiled form (built once at parse time by TaskletCompiler).
    std::vector<BCInstr> bytecode_;
    std::vector<Value> consts_;
    std::vector<double> f64consts_;  ///< consts_ as doubles (f64 engine).
    std::vector<std::int64_t> i64consts_;  ///< consts_ as int64s (i64 engine).
    bool f64_feasible_ = false;      ///< See has_f64_variant().
    bool i64_feasible_ = false;      ///< See has_i64_variant().
    bool straightline_ = false;      ///< See is_straightline().
    bool has_div_mod_ = false;       ///< See has_div_mod().
    std::vector<SlotDesc> slot_table_;  // indexed by var index
    std::vector<std::string> trap_connectors_;
    int slot_count_ = 0;
    int reg_count_ = 0;

    friend class TaskletParser;
    friend class TaskletCompiler;
};

using TaskletProgramPtr = std::shared_ptr<const TaskletProgram>;

}  // namespace ff::interp
