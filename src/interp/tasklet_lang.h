// The tasklet mini-language.
//
// Tasklets are the leaf computations of the dataflow graph.  Their code is a
// short sequence of assignments over scalar (or short fixed-width vector)
// connectors, e.g.:
//
//     out = cin + a * b
//     v[0] = a[0] * s; v[1] = a[1] * s       (vectorized form)
//     y = x > 0 ? x : 0
//
// Connectors bind to memlets on the enclosing graph edges.  Variables read
// before being assigned are *input* connectors; variables ever assigned are
// *output* connectors (assigned-then-read names are locals and outputs).
//
// Numeric model: a value is either double or int64.  Mixed arithmetic
// promotes to double; integer division/modulo use floor semantics to agree
// with the symbolic layer.  Comparisons and logical operators yield int 0/1.
//
// Programs are parsed once and cached by the interpreter (they execute once
// per map iteration, which is the hot path of fuzzing trials).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ff::interp {

/// A scalar runtime value: double or int64.
struct Value {
    bool is_float = true;
    double f = 0.0;
    std::int64_t i = 0;

    static Value from_double(double d) { return Value{true, d, 0}; }
    static Value from_int(std::int64_t v) { return Value{false, 0.0, v}; }

    double as_double() const { return is_float ? f : static_cast<double>(i); }
    std::int64_t as_int() const { return is_float ? static_cast<std::int64_t>(f) : i; }
    bool truthy() const { return is_float ? f != 0.0 : i != 0; }
};

/// Connector storage during one tasklet execution: name -> lane values.
using ConnectorEnv = std::map<std::string, std::vector<Value>>;

/// A parsed, immutable tasklet program.
class TaskletProgram {
public:
    /// Parses `code`; throws common::ParseError.
    static std::shared_ptr<const TaskletProgram> parse(const std::string& code);

    /// Input connectors: name -> width (1 for scalars).
    const std::map<std::string, int>& reads() const { return reads_; }
    /// Output connectors: name -> width.
    const std::map<std::string, int>& writes() const { return writes_; }

    /// Executes the program.  `env` must contain every input connector with
    /// at least the declared width; outputs are created/overwritten.
    /// Throws common::Error on missing inputs.
    void execute(ConnectorEnv& env) const;

    const std::string& source() const { return source_; }

private:
    TaskletProgram() = default;

    // Compact AST in an index-based arena.
    enum class Op : std::uint8_t {
        ConstF, ConstI, Load,              // leaf
        Neg, Not,                          // unary
        Add, Sub, Mul, Div, Mod,           // arithmetic
        Lt, Le, Gt, Ge, Eq, Ne,            // comparison
        And, Or,                           // logical
        Ternary,                           // cond ? a : b
        Min, Max, Abs, Exp, Log, Sqrt,     // functions
        Sin, Cos, Tanh, Pow, Floor, Ceil,
        Select,                            // select(cond, a, b)
    };
    struct Node {
        Op op;
        double fval = 0.0;
        std::int64_t ival = 0;
        int var = -1;   // index into var_names_ for Load
        int lane = 0;   // lane for Load
        int a = -1, b = -1, c = -1;  // child node indices
    };
    struct Stmt {
        int var;   // index into var_names_
        int lane;
        int expr;  // root node index
    };

    Value eval(int node, const std::vector<std::vector<Value>*>& slots) const;

    std::string source_;
    std::vector<Node> nodes_;
    std::vector<Stmt> stmts_;
    std::vector<std::string> var_names_;
    std::map<std::string, int> reads_;
    std::map<std::string, int> writes_;

    friend class TaskletParser;
};

using TaskletProgramPtr = std::shared_ptr<const TaskletProgram>;

}  // namespace ff::interp
