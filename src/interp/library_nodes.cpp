#include "interp/library_nodes.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ff::interp {

namespace {

using ir::LibraryKind;

// Library operands reuse the interpreter's scratch pool (indices 0..2;
// the interpreter's own copy helpers use higher indices) so repeated
// library-node executions do not reallocate their dense staging buffers.
constexpr std::size_t kOperandA = 0;
constexpr std::size_t kOperandB = 1;
constexpr std::size_t kOperandC = 2;

/// Dense operand view materialized from a memlet subset into a pooled
/// scratch buffer.
struct Operand {
    std::vector<std::int64_t> dims;  // subset extents, in order
    std::vector<Value>* values = nullptr;  // row-major over the subset

    std::int64_t volume() const {
        std::int64_t v = 1;
        for (auto d : dims) v *= d;
        return v;
    }
};

Operand gather_operand(Interpreter& interp, const ir::SDFG& sdfg, Context& ctx,
                       const ir::Memlet& memlet, std::size_t pool_index) {
    Operand op;
    const auto ranges = memlet.subset.concretize(ctx.symbols);
    op.dims.reserve(ranges.size());
    for (const auto& r : ranges) op.dims.push_back(ir::concrete_range_size(r));
    op.values = &interp.scratch_values(pool_index);
    interp.gather_into(sdfg, ctx, memlet, *op.values);
    return op;
}

const ir::Memlet& input_memlet(const ir::State& state, ir::NodeId node, const std::string& conn) {
    for (graph::EdgeId eid : state.graph().in_edges(node)) {
        const auto& e = state.graph().edge(eid).data;
        if (e.dst_conn == conn) return e.memlet;
    }
    throw common::Error("library node missing input connector '" + conn + "'");
}

const ir::Memlet& output_memlet(const ir::State& state, ir::NodeId node,
                                const std::string& conn) {
    for (graph::EdgeId eid : state.graph().out_edges(node)) {
        const auto& e = state.graph().edge(eid).data;
        if (e.src_conn == conn) return e.memlet;
    }
    throw common::Error("library node missing output connector '" + conn + "'");
}

/// C[M,N] += A[M,K] * B[K,N] for one (pre-offset) batch; C must be zeroed.
void matmul_2d(const std::vector<Value>& a, std::int64_t a_off, const std::vector<Value>& b,
               std::int64_t b_off, std::vector<Value>& c, std::int64_t c_off, std::int64_t m,
               std::int64_t k, std::int64_t n) {
    for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t l = 0; l < k; ++l) {
            const double av = a[static_cast<std::size_t>(a_off + i * k + l)].as_double();
            if (av == 0.0) continue;
            for (std::int64_t j = 0; j < n; ++j) {
                const double bv = b[static_cast<std::size_t>(b_off + l * n + j)].as_double();
                auto& cv = c[static_cast<std::size_t>(c_off + i * n + j)];
                cv = Value::from_double(cv.as_double() + av * bv);
            }
        }
    }
}

void do_matmul(const Operand& a, const Operand& b, Operand& c, bool batched) {
    const std::size_t ad = a.dims.size();
    const std::size_t bd = b.dims.size();
    if (ad < 2 || bd < 2) throw common::Error("matmul: operands need >= 2 dims");
    const std::int64_t m = a.dims[ad - 2];
    const std::int64_t k = a.dims[ad - 1];
    const std::int64_t k2 = b.dims[bd - 2];
    const std::int64_t n = b.dims[bd - 1];
    if (k != k2)
        throw common::Error("matmul: inner dimension mismatch (" + std::to_string(k) + " vs " +
                            std::to_string(k2) + ")");
    std::int64_t batch = 1;
    if (batched) {
        if (ad != bd) throw common::Error("batched matmul: rank mismatch");
        for (std::size_t d = 0; d + 2 < ad; ++d) {
            if (a.dims[d] != b.dims[d]) throw common::Error("batched matmul: batch dim mismatch");
            batch *= a.dims[d];
        }
    }
    c.dims = a.dims;
    c.dims[ad - 1] = n;
    c.values->assign(static_cast<std::size_t>(batch * m * n), Value::from_double(0.0));
    for (std::int64_t bi = 0; bi < batch; ++bi)
        matmul_2d(*a.values, bi * m * k, *b.values, bi * k * n, *c.values, bi * m * n, m, k, n);
}

}  // namespace

void execute_library(Interpreter& interp, const ir::SDFG& sdfg, const ir::State& state,
                     ir::NodeId node, Context& ctx) {
    const ir::DataflowNode& n = state.graph().node(node);
    switch (n.lib) {
        case LibraryKind::MatMul:
        case LibraryKind::BatchedMatMul: {
            Operand a = gather_operand(interp, sdfg, ctx, input_memlet(state, node, "A"),
                                       kOperandA);
            Operand b = gather_operand(interp, sdfg, ctx, input_memlet(state, node, "B"),
                                       kOperandB);
            Operand c;
            c.values = &interp.scratch_values(kOperandC);
            do_matmul(a, b, c, n.lib == LibraryKind::BatchedMatMul);
            interp.scatter(sdfg, ctx, output_memlet(state, node, "C"), *c.values);
            break;
        }
        case LibraryKind::Transpose: {
            Operand a = gather_operand(interp, sdfg, ctx, input_memlet(state, node, "A"),
                                       kOperandA);
            if (a.dims.size() != 2) throw common::Error("transpose: operand must be 2-D");
            const std::int64_t m = a.dims[0], k = a.dims[1];
            std::vector<Value>& out = interp.scratch_values(kOperandB);
            out.assign(static_cast<std::size_t>(m * k), Value{});
            for (std::int64_t i = 0; i < m; ++i)
                for (std::int64_t j = 0; j < k; ++j)
                    out[static_cast<std::size_t>(j * m + i)] =
                        (*a.values)[static_cast<std::size_t>(i * k + j)];
            interp.scatter(sdfg, ctx, output_memlet(state, node, "B"), out);
            break;
        }
        case LibraryKind::ReduceSum:
        case LibraryKind::ReduceMax: {
            Operand in = gather_operand(interp, sdfg, ctx, input_memlet(state, node, "in"),
                                        kOperandA);
            if (in.dims.empty()) throw common::Error("reduce: operand must have >= 1 dim");
            const std::int64_t axis_len = in.dims.back();
            if (axis_len <= 0) throw common::Error("reduce: empty reduction axis");
            const std::int64_t rows = in.volume() / axis_len;
            std::vector<Value>& out = interp.scratch_values(kOperandB);
            out.assign(static_cast<std::size_t>(rows), Value{});
            const std::vector<Value>& vals = *in.values;
            for (std::int64_t r = 0; r < rows; ++r) {
                double acc = vals[static_cast<std::size_t>(r * axis_len)].as_double();
                for (std::int64_t j = 1; j < axis_len; ++j) {
                    const double v = vals[static_cast<std::size_t>(r * axis_len + j)].as_double();
                    acc = n.lib == LibraryKind::ReduceSum ? acc + v : std::fmax(acc, v);
                }
                out[static_cast<std::size_t>(r)] = Value::from_double(acc);
            }
            interp.scatter(sdfg, ctx, output_memlet(state, node, "out"), out);
            break;
        }
        case LibraryKind::Softmax: {
            Operand in = gather_operand(interp, sdfg, ctx, input_memlet(state, node, "in"),
                                        kOperandA);
            if (in.dims.empty()) throw common::Error("softmax: operand must have >= 1 dim");
            const std::int64_t axis_len = in.dims.back();
            if (axis_len <= 0) throw common::Error("softmax: empty axis");
            const std::int64_t rows = in.volume() / axis_len;
            const std::vector<Value>& vals = *in.values;
            std::vector<Value>& out = interp.scratch_values(kOperandB);
            out.assign(vals.size(), Value{});
            for (std::int64_t r = 0; r < rows; ++r) {
                double row_max = vals[static_cast<std::size_t>(r * axis_len)].as_double();
                for (std::int64_t j = 1; j < axis_len; ++j)
                    row_max = std::fmax(
                        row_max, vals[static_cast<std::size_t>(r * axis_len + j)].as_double());
                double denom = 0.0;
                for (std::int64_t j = 0; j < axis_len; ++j) {
                    const double e = std::exp(
                        vals[static_cast<std::size_t>(r * axis_len + j)].as_double() - row_max);
                    out[static_cast<std::size_t>(r * axis_len + j)] = Value::from_double(e);
                    denom += e;
                }
                for (std::int64_t j = 0; j < axis_len; ++j) {
                    auto& v = out[static_cast<std::size_t>(r * axis_len + j)];
                    v = Value::from_double(v.as_double() / denom);
                }
            }
            interp.scatter(sdfg, ctx, output_memlet(state, node, "out"), out);
            break;
        }
    }
}

}  // namespace ff::interp
