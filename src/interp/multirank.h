// Simulated multi-rank (distributed-memory) runtime.
//
// Replaces the MPI testbed of Sec. 6.2: each rank owns a private Context
// (buffers + a bound `rank` symbol); the program executes node-major so that
// communication collectives observe all ranks' inputs.  This models an SPMD
// program at a synchronization granularity sufficient for static collective
// patterns (single-state SDFGs, which covers the SDDMM forward pass).
#pragma once

#include <vector>

#include "interp/interpreter.h"

namespace ff::interp {

struct MultiRankResult {
    ExecStatus status = ExecStatus::Ok;
    std::string message;
    bool ok() const { return status == ExecStatus::Ok; }
};

class MultiRankInterpreter {
public:
    explicit MultiRankInterpreter(int num_ranks, ExecConfig config = {});

    int num_ranks() const { return num_ranks_; }

    /// Runs a *single-state* SDFG across all ranks.  `rank_contexts` must
    /// have one Context per rank; the `rank` and `num_ranks` symbols are
    /// bound automatically.
    MultiRankResult run(const ir::SDFG& sdfg, std::vector<Context>& rank_contexts);

private:
    void execute_comm(const ir::SDFG& sdfg, const ir::State& state, ir::NodeId node,
                      std::vector<Context>& rank_contexts);

    int num_ranks_;
    Interpreter interp_;
    /// Per-rank contribution staging for collectives, reused across comm
    /// nodes (and runs) so the SPMD schedule does not reallocate per node.
    std::vector<std::vector<Value>> contributions_;
    std::vector<Value> reduced_;
};

}  // namespace ff::interp
