#include "interp/plan_cache.h"

namespace ff::interp {

void PlanCache::evict_stale_epochs(const PlanKey& key) {
    // Keys order by (uid, epoch, state), so the same SDFG's entries are
    // contiguous: erase the range [ (uid, 0, nullptr), (uid, epoch, nullptr) ).
    const auto first = plans_.lower_bound(PlanKey{std::get<0>(key), 0, nullptr});
    const auto last = plans_.lower_bound(PlanKey{std::get<0>(key), std::get<1>(key), nullptr});
    plans_.erase(first, last);
}

TaskletProgramPtr PlanCache::program_for(const std::string& code) {
    std::lock_guard<std::mutex> lock(programs_mutex_);
    auto it = programs_.find(code);
    if (it != programs_.end()) return it->second;
    TaskletProgramPtr prog = TaskletProgram::parse(code);
    programs_.emplace(code, prog);
    return prog;
}

}  // namespace ff::interp
