#include "interp/plan_cache.h"

#include <algorithm>
#include <limits>

#include "feedback/coverage.h"
#include "ir/sdfg.h"

namespace ff::interp {

void PlanCache::evict_stale_epochs(const PlanKey& key) {
    // Keys order by (uid, epoch, state), so the same SDFG's entries are
    // contiguous: erase the range [ (uid, 0, nullptr), (uid, epoch, nullptr) ).
    const auto first = plans_.lower_bound(PlanKey{std::get<0>(key), 0, nullptr});
    const auto last = plans_.lower_bound(PlanKey{std::get<0>(key), std::get<1>(key), nullptr});
    plans_.erase(first, last);
}

std::shared_ptr<const feedback::CovAtlas> PlanCache::atlas_for(const ir::SDFG& sdfg) {
    const std::pair<std::uint64_t, std::uint64_t> key{sdfg.plan_uid(), sdfg.mutation_epoch()};
    std::lock_guard<std::mutex> lock(atlas_mutex_);
    auto it = atlases_.find(key);
    if (it == atlases_.end()) {
        // Evict the same SDFG's stale-epoch atlases (epochs only grow).
        const auto first = atlases_.lower_bound({key.first, 0});
        atlases_.erase(first, atlases_.lower_bound(key));
        it = atlases_
                 .emplace(key, std::make_shared<const feedback::CovAtlas>(
                                   feedback::CovAtlas::build(sdfg)))
                 .first;
    }
    return it->second;
}

TaskletProgramPtr PlanCache::program_for(const std::string& code) {
    std::lock_guard<std::mutex> lock(programs_mutex_);
    auto it = programs_.find(code);
    if (it != programs_.end()) return it->second;
    TaskletProgramPtr prog = TaskletProgram::parse(code);
    programs_.emplace(code, prog);
    return prog;
}

PlanCachePtr PlanCacheRegistry::acquire(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++creations_;
        it = entries_.emplace(key, Entry{std::make_shared<PlanCache>(), 0, false}).first;
    }
    it->second.epoch = ++epoch_;
    it->second.retired = false;  // a straggler re-acquired a retired instance
    return it->second.cache;
}

void PlanCacheRegistry::retire(std::uint64_t key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return;  // already evicted (retire is idempotent)
    if (!it->second.retired) {
        it->second.retired = true;
        it->second.epoch = ++epoch_;
    }
    evict_over_bound();
}

void PlanCacheRegistry::evict_over_bound() {
    for (;;) {
        std::size_t retired = 0;
        auto oldest = entries_.end();
        std::uint64_t oldest_epoch = std::numeric_limits<std::uint64_t>::max();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->second.retired) continue;
            ++retired;
            if (it->second.epoch < oldest_epoch) {
                oldest_epoch = it->second.epoch;
                oldest = it;
            }
        }
        if (retired <= retained_bound_ || oldest == entries_.end()) return;
        // Fold the evicted cache's specialization counters into the running
        // total so spec_totals() survives eviction.
        evicted_spec_ += oldest->second.cache->spec_stats();
        entries_.erase(oldest);
        ++evictions_;
    }
}

SpecStats PlanCacheRegistry::spec_totals() const {
    std::lock_guard<std::mutex> lock(mutex_);
    SpecStats total = evicted_spec_;
    for (const auto& [key, entry] : entries_) total += entry.cache->spec_stats();
    return total;
}

std::size_t PlanCacheRegistry::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t PlanCacheRegistry::evictions() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::uint64_t PlanCacheRegistry::creations() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return creations_;
}

}  // namespace ff::interp
