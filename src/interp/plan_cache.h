// Shared, thread-safe caches for compiled execution artifacts.
//
// The parallel trial engine runs one interpreter per worker thread over a
// *shared, immutable* SDFG pair.  Everything derived from the graphs —
// parsed/compiled tasklet programs, per-state StatePlans, and the interned
// symbol table their expressions are lowered against — is input-independent
// and therefore shared through this cache:
//
//  * Plans are built once under a lock (builds are serialized; the build is
//    cheap and happens once per state per mutation epoch).
//  * Steady-state reads are lock-free: each Interpreter keeps a private memo
//    of shared_ptrs into the cache, so after the first execution of a state
//    no lock is touched on the trial path.
//  * Cache keys carry the SDFG's plan uid and mutation epoch, so applying a
//    transformation (which bumps the epoch via Transformation::apply)
//    naturally invalidates without any cross-thread coordination, and
//    address reuse across destroyed graphs can never alias.  Direct IR
//    mutation bypassing Transformation::apply must bump the epoch manually
//    (see ir::SDFG::mutation_epoch) or warm interpreters serve stale plans.
//
// A default-constructed Interpreter creates a private cache; callers that
// fan trials out across threads construct one PlanCache and hand it to every
// interpreter (see core::Fuzzer / core::DifferentialTester).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>

#include "interp/tasklet_lang.h"
#include "symbolic/interned.h"

namespace ff::ir {
class State;
}

namespace ff::interp {

struct StatePlan;

/// Identity of one state's plan: (SDFG uid, mutation epoch, state address).
using PlanKey = std::tuple<std::uint64_t, std::uint64_t, const ir::State*>;

class PlanCache {
public:
    /// Interned symbol table every plan in this cache is lowered against.
    /// Thread-safe (see sym::SymbolTable).
    sym::SymbolTable& symbols() { return symbols_; }

    /// Plan for `key`, building it via `build` under the cache lock when
    /// missing.  The returned plan is immutable and shared.  A miss first
    /// evicts plans of the same SDFG from older mutation epochs — they can
    /// never be requested again (epochs only grow) and hold pointers into
    /// the pre-mutation graph, so a long-lived cache reused across many
    /// transformations stays bounded.
    template <typename BuildFn>
    std::shared_ptr<const StatePlan> get_or_build(const PlanKey& key, BuildFn&& build) {
        std::lock_guard<std::mutex> lock(plans_mutex_);
        auto it = plans_.find(key);
        if (it == plans_.end()) {
            evict_stale_epochs(key);
            it = plans_.emplace(key, std::make_shared<const StatePlan>(build())).first;
        }
        return it->second;
    }

    /// Parsed+compiled tasklet program for `code`, cached by content.
    TaskletProgramPtr program_for(const std::string& code);

private:
    /// Drops entries with `key`'s SDFG uid and a mutation epoch older than
    /// `key`'s.  Caller holds plans_mutex_.
    void evict_stale_epochs(const PlanKey& key);

    std::mutex plans_mutex_;
    std::map<PlanKey, std::shared_ptr<const StatePlan>> plans_;
    std::mutex programs_mutex_;
    std::unordered_map<std::string, TaskletProgramPtr> programs_;
    sym::SymbolTable symbols_;
};

using PlanCachePtr = std::shared_ptr<PlanCache>;

}  // namespace ff::interp
