// Shared, thread-safe caches for compiled execution artifacts.
//
// The parallel trial engine runs one interpreter per worker thread over a
// *shared, immutable* SDFG pair.  Everything derived from the graphs —
// parsed/compiled tasklet programs, per-state StatePlans, and the interned
// symbol table their expressions are lowered against — is input-independent
// and therefore shared through this cache:
//
//  * Plans are built once under a lock (builds are serialized; the build is
//    cheap and happens once per state per mutation epoch).
//  * Steady-state reads are lock-free: each Interpreter keeps a private memo
//    of shared_ptrs into the cache, so after the first execution of a state
//    no lock is touched on the trial path.
//  * Cache keys carry the SDFG's plan uid and mutation epoch, so applying a
//    transformation (which bumps the epoch via Transformation::apply)
//    naturally invalidates without any cross-thread coordination, and
//    address reuse across destroyed graphs can never alias.  Direct IR
//    mutation bypassing Transformation::apply must bump the epoch manually
//    (see ir::SDFG::mutation_epoch) or warm interpreters serve stale plans.
//
// A default-constructed Interpreter creates a private cache; callers that
// fan trials out across threads construct one PlanCache and hand it to every
// interpreter.  The audit-wide scheduler (core::Fuzzer::audit) manages one
// cache per transformation instance through a PlanCacheRegistry, which
// bounds how many finished instances' artifacts stay resident.
#pragma once

/// \file
/// Shared caches for compiled execution artifacts (PlanCache) and the
/// bounded per-instance registry behind the audit-wide scheduler
/// (PlanCacheRegistry).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>

#include "interp/tasklet_lang.h"
#include "symbolic/interned.h"

namespace ff::feedback {
class CovAtlas;
}

namespace ff::ir {
class SDFG;
class State;
}

namespace ff::interp {

struct StatePlan;

/// Identity of one state's plan: (SDFG uid, mutation epoch, state address).
using PlanKey = std::tuple<std::uint64_t, std::uint64_t, const ir::State*>;

/// Specialization counters of one plan cache (see docs/TUNING.md).
///
/// The plan-time fields count classification outcomes — how many map scopes
/// collapsed to flat-stride kernels (and of those, how many are
/// segment-eligible) and how many tasklets got an untagged engine (f64 or
/// i64) — once per built StatePlan.  The runtime fields count kernel
/// launches: a *fallback* is a launch whose per-execution validation (rank or
/// footprint) handed the scope back to the generic odometer; a *segment
/// launch* is a committed launch that ran the batched vertical VM instead of
/// the per-point kernel loop.  Counter values never influence results; they
/// exist for benchmarks and tuning.
struct SpecStats {
    std::int64_t scopes_planned = 0;      ///< Map scopes classified.
    std::int64_t scopes_specialized = 0;  ///< ... that carry a flat-stride kernel.
    std::int64_t scopes_segmented = 0;    ///< ... whose kernel is segment-eligible.
    std::int64_t tasklets_planned = 0;    ///< Tasklet plans built.
    std::int64_t tasklets_f64 = 0;        ///< ... selecting the untagged f64 VM.
    std::int64_t tasklets_i64 = 0;        ///< ... selecting the untagged i64 VM.
    std::int64_t kernel_launches = 0;     ///< Flat-stride executions committed.
    std::int64_t kernel_fallbacks = 0;    ///< Launches revalidated onto the generic path.
    std::int64_t segment_launches = 0;    ///< Committed launches that ran batched segments.

    /// Field-wise accumulation (registry totals over many caches).
    SpecStats& operator+=(const SpecStats& o) {
        scopes_planned += o.scopes_planned;
        scopes_specialized += o.scopes_specialized;
        scopes_segmented += o.scopes_segmented;
        tasklets_planned += o.tasklets_planned;
        tasklets_f64 += o.tasklets_f64;
        tasklets_i64 += o.tasklets_i64;
        kernel_launches += o.kernel_launches;
        kernel_fallbacks += o.kernel_fallbacks;
        segment_launches += o.segment_launches;
        return *this;
    }
};

/// Thread-safe cache of the compiled artifacts derived from one (or more)
/// immutable SDFGs: per-state StatePlans, content-keyed tasklet programs,
/// and the interned symbol table every plan is lowered against.  Shared by
/// all interpreters that execute the same program pair concurrently.
class PlanCache {
public:
    /// Interned symbol table every plan in this cache is lowered against.
    /// Thread-safe (see sym::SymbolTable).
    sym::SymbolTable& symbols() { return symbols_; }

    /// Plan for `key`, building it via `build` under the cache lock when
    /// missing.  The returned plan is immutable and shared.  A miss first
    /// evicts plans of the same SDFG from older mutation epochs — they can
    /// never be requested again (epochs only grow) and hold pointers into
    /// the pre-mutation graph, so a long-lived cache reused across many
    /// transformations stays bounded.
    template <typename BuildFn>
    std::shared_ptr<const StatePlan> get_or_build(const PlanKey& key, BuildFn&& build) {
        std::lock_guard<std::mutex> lock(plans_mutex_);
        auto it = plans_.find(key);
        if (it == plans_.end()) {
            evict_stale_epochs(key);
            it = plans_.emplace(key, std::make_shared<const StatePlan>(build())).first;
        }
        return it->second;
    }

    /// Parsed+compiled tasklet program for `code`, cached by content.
    TaskletProgramPtr program_for(const std::string& code);

    /// Def-use pair atlas of `sdfg` (see feedback/coverage.h), built once
    /// per (plan uid, mutation epoch) under a lock and shared — the atlas is
    /// a pure function of the graph, so every interpreter and every thread
    /// sees the same dense pair ids.  Stale-epoch atlases are evicted on the
    /// next miss, mirroring plan eviction.
    std::shared_ptr<const feedback::CovAtlas> atlas_for(const ir::SDFG& sdfg);

    /// Accumulates plan-time classification counts (once per built plan;
    /// called from inside the build callback, so effectively serialized).
    void note_classification(std::int64_t scopes, std::int64_t specialized,
                             std::int64_t segmented, std::int64_t tasklets,
                             std::int64_t f64, std::int64_t i64) {
        scopes_planned_.fetch_add(scopes, std::memory_order_relaxed);
        scopes_specialized_.fetch_add(specialized, std::memory_order_relaxed);
        scopes_segmented_.fetch_add(segmented, std::memory_order_relaxed);
        tasklets_planned_.fetch_add(tasklets, std::memory_order_relaxed);
        tasklets_f64_.fetch_add(f64, std::memory_order_relaxed);
        tasklets_i64_.fetch_add(i64, std::memory_order_relaxed);
    }

    /// Counts one flat-stride launch attempt: `committed` false records a
    /// per-execution validation fallback to the generic odometer.  Called
    /// once per scope execution (not per point), so the relaxed atomic is
    /// off the per-point hot path.
    void note_kernel_launch(bool committed) {
        (committed ? kernel_launches_ : kernel_fallbacks_)
            .fetch_add(1, std::memory_order_relaxed);
    }

    /// Counts one committed launch that executed batched segments (the
    /// vertical VM) rather than the per-point kernel loop.  Called at most
    /// once per scope execution (alongside note_kernel_launch(true)).
    void note_segment_launch() {
        segment_launches_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Snapshot of the counters.
    SpecStats spec_stats() const {
        SpecStats s;
        s.scopes_planned = scopes_planned_.load(std::memory_order_relaxed);
        s.scopes_specialized = scopes_specialized_.load(std::memory_order_relaxed);
        s.scopes_segmented = scopes_segmented_.load(std::memory_order_relaxed);
        s.tasklets_planned = tasklets_planned_.load(std::memory_order_relaxed);
        s.tasklets_f64 = tasklets_f64_.load(std::memory_order_relaxed);
        s.tasklets_i64 = tasklets_i64_.load(std::memory_order_relaxed);
        s.kernel_launches = kernel_launches_.load(std::memory_order_relaxed);
        s.kernel_fallbacks = kernel_fallbacks_.load(std::memory_order_relaxed);
        s.segment_launches = segment_launches_.load(std::memory_order_relaxed);
        return s;
    }

private:
    /// Drops entries with `key`'s SDFG uid and a mutation epoch older than
    /// `key`'s.  Caller holds plans_mutex_.
    void evict_stale_epochs(const PlanKey& key);

    std::mutex plans_mutex_;                                  ///< Guards plans_.
    std::map<PlanKey, std::shared_ptr<const StatePlan>> plans_;  ///< Keyed plans.
    std::mutex atlas_mutex_;  ///< Guards atlases_.
    /// Coverage atlases keyed by (SDFG plan uid, mutation epoch).
    std::map<std::pair<std::uint64_t, std::uint64_t>,
             std::shared_ptr<const feedback::CovAtlas>>
        atlases_;
    std::mutex programs_mutex_;                               ///< Guards programs_.
    std::unordered_map<std::string, TaskletProgramPtr> programs_;  ///< By content.
    sym::SymbolTable symbols_;  ///< Interned symbols shared by all plans.

    // Specialization counters (see SpecStats).
    std::atomic<std::int64_t> scopes_planned_{0};
    std::atomic<std::int64_t> scopes_specialized_{0};
    std::atomic<std::int64_t> scopes_segmented_{0};
    std::atomic<std::int64_t> tasklets_planned_{0};
    std::atomic<std::int64_t> tasklets_f64_{0};
    std::atomic<std::int64_t> tasklets_i64_{0};
    std::atomic<std::int64_t> kernel_launches_{0};
    std::atomic<std::int64_t> kernel_fallbacks_{0};
    std::atomic<std::int64_t> segment_launches_{0};
};

/// Shared handle to a PlanCache; interpreters and the context cache hold
/// these, so registry eviction can never free artifacts still in use.
using PlanCachePtr = std::shared_ptr<PlanCache>;

/// Thread-safe registry of per-instance plan caches for audit-wide
/// scheduling.
///
/// Each transformation instance fuzzes a *different* SDFG pair, so instances
/// do not share compiled artifacts — they share the registry, which hands
/// out one PlanCache per instance key and bounds how many *retired*
/// (finished) instances keep their artifacts resident.  The protocol:
///
///  * `acquire(key)` returns the instance's cache, creating it on first use
///    (and re-creating it if a stale straggler asks after eviction — plans
///    are rebuilt, correctness is unaffected).
///  * `retire(key)` marks the instance finished.  Eviction is epoch-keyed:
///    every acquire/retire stamps a monotonically increasing epoch, and when
///    more than `retained_bound` retired entries exist the oldest-retired
///    ones are erased.  In-flight interpreters hold PlanCachePtr shared
///    handles, so erasing an entry frees memory only once the last user lets
///    go.
///
/// The audit scheduler retires instances as the global unit cursor passes
/// them, so a long audit over hundreds of instances keeps O(bound) compiled
/// artifacts resident instead of all of them.
class PlanCacheRegistry {
public:
    /// `retained_bound`: retired caches kept resident (0 keeps none).
    explicit PlanCacheRegistry(std::size_t retained_bound = 4)
        : retained_bound_(retained_bound) {}

    /// Cache for instance `key`, creating (or re-creating) it when absent.
    /// Re-acquiring a retired key un-retires it.
    PlanCachePtr acquire(std::uint64_t key);

    /// Marks `key` finished and evicts oldest-retired entries beyond the
    /// bound.  Idempotent; unknown keys are ignored.
    void retire(std::uint64_t key);

    /// Entries currently registered (live + retained retired).
    std::size_t size() const;

    /// Retired caches erased so far (the eviction counter tests assert on).
    std::uint64_t evictions() const;

    /// Caches created so far (> distinct keys iff an evicted key was
    /// re-acquired).
    std::uint64_t creations() const;

    /// Summed specialization counters over every cache this registry has
    /// handed out, including already-evicted ones (their counts are folded
    /// into a running total at eviction).  The fuzzer surfaces this through
    /// core::SchedulerStats.
    SpecStats spec_totals() const;

private:
    /// One registered instance cache and its eviction bookkeeping.
    struct Entry {
        PlanCachePtr cache;       ///< The instance's shared cache.
        std::uint64_t epoch = 0;  ///< Last acquire/retire stamp (LRU order).
        bool retired = false;     ///< Eligible for eviction.
    };

    /// Erases oldest-retired entries beyond the bound.  Caller holds mutex_.
    void evict_over_bound();

    mutable std::mutex mutex_;  ///< Guards all registry state.
    std::size_t retained_bound_;
    std::uint64_t epoch_ = 0;      ///< Monotonic stamp source.
    std::uint64_t evictions_ = 0;  ///< Total retired entries erased.
    std::uint64_t creations_ = 0;  ///< Total caches constructed.
    SpecStats evicted_spec_;       ///< Counters folded in from evicted caches.
    std::unordered_map<std::uint64_t, Entry> entries_;  ///< By instance key.
};

}  // namespace ff::interp
