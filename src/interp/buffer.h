// Concrete, typed, bounds-checked storage for containers.
//
// Buffers are allocated per execution from a container's concrete shape.
// Device buffers are filled with *deterministic garbage* derived from the
// container name: this is the simulated-GPU behaviour that makes the CLOUDSC
// GPU-kernel-extraction bug observable (Sec. 6.4 — copying back a whole
// container of which only a subset was written transports garbage into host
// memory, deterministically, so differential comparison flags it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "ir/dtypes.h"
#include "interp/tasklet_lang.h"

namespace ff::interp {

class Buffer {
public:
    Buffer() = default;
    Buffer(ir::DType dtype, std::vector<std::int64_t> shape);

    ir::DType dtype() const { return dtype_; }
    const std::vector<std::int64_t>& shape() const { return shape_; }
    /// Row-major element strides (same length as shape()); exposed so the
    /// interpreter's flat-stride map kernels can fold affine index
    /// expressions into precomputed flat-offset advances.
    const std::vector<std::int64_t>& strides() const { return strides_; }
    std::size_t dims() const { return shape_.size(); }
    std::int64_t size() const { return size_; }

    /// Raw f64 storage, or nullptr unless dtype() == F64.  The flat-stride
    /// kernel path reads/writes through this pointer after validating the
    /// whole iteration footprint up front — callers own the bounds proof.
    double* f64_data() {
        auto* v = std::get_if<std::vector<double>>(&data_);
        return v ? v->data() : nullptr;
    }
    const double* f64_data() const {
        const auto* v = std::get_if<std::vector<double>>(&data_);
        return v ? v->data() : nullptr;
    }

    /// Typed siblings of f64_data() for the widened untagged/segment tiers:
    /// raw storage, or nullptr unless dtype() matches.  Same contract — the
    /// kernel path validates the whole footprint before touching these.
    float* f32_data() {
        auto* v = std::get_if<std::vector<float>>(&data_);
        return v ? v->data() : nullptr;
    }
    const float* f32_data() const {
        const auto* v = std::get_if<std::vector<float>>(&data_);
        return v ? v->data() : nullptr;
    }
    std::int64_t* i64_data() {
        auto* v = std::get_if<std::vector<std::int64_t>>(&data_);
        return v ? v->data() : nullptr;
    }
    const std::int64_t* i64_data() const {
        const auto* v = std::get_if<std::vector<std::int64_t>>(&data_);
        return v ? v->data() : nullptr;
    }
    std::int32_t* i32_data() {
        auto* v = std::get_if<std::vector<std::int32_t>>(&data_);
        return v ? v->data() : nullptr;
    }
    const std::int32_t* i32_data() const {
        const auto* v = std::get_if<std::vector<std::int32_t>>(&data_);
        return v ? v->data() : nullptr;
    }

    /// Row-major flat index; throws common::OutOfBoundsError (tagged with
    /// `container` for diagnostics) when any coordinate is out of range.
    std::int64_t flat_index(const std::vector<std::int64_t>& idx,
                            const std::string& container) const;

    Value load(std::int64_t flat) const;
    void store(std::int64_t flat, const Value& v);

    double load_double(std::int64_t flat) const { return load(flat).as_double(); }

    void fill_zero();
    /// Deterministic pseudo-random fill (used for Device allocations).
    void fill_garbage(std::uint64_t seed);

    bool bitwise_equal(const Buffer& other) const;

    /// Raw bytes for hashing / serialization.
    const void* raw_data() const;
    std::size_t raw_bytes() const;

private:
    ir::DType dtype_ = ir::DType::F64;
    std::vector<std::int64_t> shape_;
    std::vector<std::int64_t> strides_;
    std::int64_t size_ = 0;
    std::variant<std::vector<double>, std::vector<float>, std::vector<std::int64_t>,
                 std::vector<std::int32_t>>
        data_;
};

/// First element where the two buffers differ beyond `threshold`
/// (relative-or-absolute for floats, exact for ints); nullopt when equal.
/// threshold <= 0 requests bitwise comparison (Sec. 5.1).
struct BufferMismatch {
    std::int64_t flat_index;
    double lhs;
    double rhs;
};
std::optional<BufferMismatch> compare_buffers(const Buffer& a, const Buffer& b,
                                              double threshold);

}  // namespace ff::interp
