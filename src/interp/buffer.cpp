#include "interp/buffer.h"

#include <cmath>
#include <cstring>

#include "common/error.h"
#include "common/rng.h"

namespace ff::interp {

Buffer::Buffer(ir::DType dtype, std::vector<std::int64_t> shape)
    : dtype_(dtype), shape_(std::move(shape)) {
    size_ = 1;
    for (std::int64_t extent : shape_) {
        if (extent < 0) throw common::Error("negative container extent");
        size_ *= extent;
    }
    strides_.resize(shape_.size());
    std::int64_t stride = 1;
    for (std::size_t d = shape_.size(); d-- > 0;) {
        strides_[d] = stride;
        stride *= shape_[d];
    }
    const std::size_t n = static_cast<std::size_t>(size_);
    switch (dtype_) {
        case ir::DType::F64: data_ = std::vector<double>(n, 0.0); break;
        case ir::DType::F32: data_ = std::vector<float>(n, 0.0f); break;
        case ir::DType::I64: data_ = std::vector<std::int64_t>(n, 0); break;
        case ir::DType::I32: data_ = std::vector<std::int32_t>(n, 0); break;
    }
}

std::int64_t Buffer::flat_index(const std::vector<std::int64_t>& idx,
                                const std::string& container) const {
    if (idx.size() != shape_.size())
        throw common::Error("index rank mismatch on '" + container + "'");
    std::int64_t flat = 0;
    for (std::size_t d = 0; d < idx.size(); ++d) {
        if (idx[d] < 0 || idx[d] >= shape_[d])
            throw common::OutOfBoundsError(container, idx[d], shape_[d]);
        flat += idx[d] * strides_[d];
    }
    return flat;
}

Value Buffer::load(std::int64_t flat) const {
    const std::size_t i = static_cast<std::size_t>(flat);
    switch (dtype_) {
        case ir::DType::F64: return Value::from_double(std::get<std::vector<double>>(data_)[i]);
        case ir::DType::F32:
            return Value::from_double(static_cast<double>(std::get<std::vector<float>>(data_)[i]));
        case ir::DType::I64:
            return Value::from_int(std::get<std::vector<std::int64_t>>(data_)[i]);
        case ir::DType::I32:
            return Value::from_int(
                static_cast<std::int64_t>(std::get<std::vector<std::int32_t>>(data_)[i]));
    }
    throw common::Error("unreachable dtype");
}

void Buffer::store(std::int64_t flat, const Value& v) {
    const std::size_t i = static_cast<std::size_t>(flat);
    switch (dtype_) {
        case ir::DType::F64: std::get<std::vector<double>>(data_)[i] = v.as_double(); break;
        case ir::DType::F32:
            std::get<std::vector<float>>(data_)[i] = static_cast<float>(v.as_double());
            break;
        case ir::DType::I64: std::get<std::vector<std::int64_t>>(data_)[i] = v.as_int(); break;
        case ir::DType::I32:
            std::get<std::vector<std::int32_t>>(data_)[i] = static_cast<std::int32_t>(v.as_int());
            break;
    }
}

void Buffer::fill_zero() {
    std::visit([](auto& vec) { std::fill(vec.begin(), vec.end(), typename std::decay_t<decltype(vec)>::value_type{}); },
               data_);
}

void Buffer::fill_garbage(std::uint64_t seed) {
    common::Rng rng(seed);
    for (std::int64_t i = 0; i < size_; ++i) {
        // Large-magnitude values so that garbage leaking into results is
        // unmistakably different from legitimate data.
        const double g = 1.0e6 + rng.uniform_double(0.0, 1.0e6);
        store(i, ir::dtype_is_float(dtype_) ? Value::from_double(g)
                                            : Value::from_int(static_cast<std::int64_t>(g)));
    }
}

bool Buffer::bitwise_equal(const Buffer& other) const {
    if (dtype_ != other.dtype_ || shape_ != other.shape_) return false;
    // Empty buffers are trivially equal; an empty vector's data() may be
    // null, which memcmp is declared never to accept.
    if (size_ == 0) return true;
    return std::memcmp(raw_data(), other.raw_data(), raw_bytes()) == 0;
}

const void* Buffer::raw_data() const {
    return std::visit([](const auto& vec) -> const void* { return vec.data(); }, data_);
}

std::size_t Buffer::raw_bytes() const {
    return static_cast<std::size_t>(size_) * ir::dtype_size(dtype_);
}

std::optional<BufferMismatch> compare_buffers(const Buffer& a, const Buffer& b,
                                              double threshold) {
    if (a.dtype() != b.dtype() || a.shape() != b.shape())
        return BufferMismatch{-1, static_cast<double>(a.size()), static_cast<double>(b.size())};
    if (threshold <= 0.0) {
        if (a.bitwise_equal(b)) return std::nullopt;
        // Locate the first differing element for the report.
        for (std::int64_t i = 0; i < a.size(); ++i) {
            const Value va = a.load(i);
            const Value vb = b.load(i);
            if (std::memcmp(&va.f, &vb.f, sizeof(double)) != 0 || va.i != vb.i)
                return BufferMismatch{i, va.as_double(), vb.as_double()};
        }
        return std::nullopt;  // padding-only difference (cannot happen with vectors)
    }
    for (std::int64_t i = 0; i < a.size(); ++i) {
        const double x = a.load_double(i);
        const double y = b.load_double(i);
        if (std::isnan(x) && std::isnan(y)) continue;
        const double diff = std::fabs(x - y);
        const double scale = std::fmax(1.0, std::fmax(std::fabs(x), std::fabs(y)));
        if (!(diff / scale <= threshold)) return BufferMismatch{i, x, y};
    }
    return std::nullopt;
}

}  // namespace ff::interp
