#include "interp/interpreter.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "feedback/coverage.h"
#include "interp/library_nodes.h"

namespace ff::interp {

using ir::DataflowNode;
using ir::NodeId;
using ir::NodeKind;

namespace {

// Indices into the interpreter's scratch_values() pool.  Library nodes use
// low indices (see library_nodes.cpp); the interpreter's own helpers use the
// high ones so nested data movement never aliases.
constexpr std::size_t kCopyScratch = 6;
constexpr std::size_t kPassthroughBase = 8;  // + per-tasklet passthrough pool index

/// Precomputes subset shape facts that do not depend on symbol values.
void analyze_subset(AccessPlan& ap) {
    ap.single_point = true;
    ap.const_volume = 1;
    bool volume_known = true;
    for (const ir::Range& r : ap.memlet->subset.ranges) {
        const bool step_const_nonzero = r.step->is_constant() && r.step->constant_value() != 0;
        if (step_const_nonzero && r.begin->equals(*r.end)) continue;  // one index
        ap.single_point = false;
        if (step_const_nonzero && r.begin->is_constant() && r.end->is_constant()) {
            ap.const_volume *= ir::concrete_range_size(ir::ConcreteRange{
                r.begin->constant_value(), r.end->constant_value(), r.step->constant_value()});
        } else {
            volume_known = false;
        }
    }
    if (!volume_known) ap.const_volume = -1;
}

/// Lowers one symbolic range triple to interned programs.
RangePlan lower_range(const ir::Range& r, sym::SymbolTable& tab,
                      std::vector<sym::SymId>& used) {
    RangePlan rp;
    rp.begin = sym::CompiledExpr::lower(r.begin, tab, &used);
    rp.end = sym::CompiledExpr::lower(r.end, tab, &used);
    rp.step = sym::CompiledExpr::lower(r.step, tab, &used);
    return rp;
}

/// Saturating counter add: hostile iteration footprints (a kernel launch's
/// point product can exceed int64) must clamp, never wrap into a fresh
/// budget.
std::int64_t saturating_add(std::int64_t counter, __int128 amount) {
    const __int128 sum = static_cast<__int128>(counter) + amount;
    constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
    return sum > kMax ? kMax : static_cast<std::int64_t>(sum);
}

// --- Untagged load/store conversions -----------------------------------------
//
// The untagged tiers move values between raw Buffer storage and flat
// double/int64 arenas.  These helpers are the exact expressions Buffer::load
// / Buffer::store apply on the tagged path, so every tier stays
// byte-identical for any container dtype:
//  * loads promote within the signature's family (F32 -> double mirrors the
//    tagged load; I32 -> int64 likewise);
//  * stores convert the untagged result like Buffer::store converts the
//    tagged Value — including int64 -> float *via double* (Buffer::store
//    casts as_double(), which double-rounds; a direct int64 -> float cast
//    can differ in the last bit).

/// Raw storage base of `buf`'s runtime dtype (never null for a constructed
/// buffer).
void* raw_data_of(Buffer& buf) {
    switch (buf.dtype()) {
        case ir::DType::F64: return buf.f64_data();
        case ir::DType::F32: return buf.f32_data();
        case ir::DType::I64: return buf.i64_data();
        case ir::DType::I32: return buf.i32_data();
    }
    return nullptr;
}

double load_to_f64(const void* raw, ir::DType dt, std::int64_t flat) {
    return dt == ir::DType::F64
               ? static_cast<const double*>(raw)[flat]
               : static_cast<double>(static_cast<const float*>(raw)[flat]);
}

std::int64_t load_to_i64(const void* raw, ir::DType dt, std::int64_t flat) {
    return dt == ir::DType::I64
               ? static_cast<const std::int64_t*>(raw)[flat]
               : static_cast<std::int64_t>(static_cast<const std::int32_t*>(raw)[flat]);
}

void store_from_f64(void* raw, ir::DType dt, std::int64_t flat, double v) {
    switch (dt) {
        case ir::DType::F64: static_cast<double*>(raw)[flat] = v; break;
        case ir::DType::F32:
            static_cast<float*>(raw)[flat] = static_cast<float>(v);
            break;
        case ir::DType::I64:
            static_cast<std::int64_t*>(raw)[flat] = static_cast<std::int64_t>(v);
            break;
        case ir::DType::I32:
            static_cast<std::int32_t*>(raw)[flat] =
                static_cast<std::int32_t>(static_cast<std::int64_t>(v));
            break;
    }
}

void store_from_i64(void* raw, ir::DType dt, std::int64_t flat, std::int64_t v) {
    switch (dt) {
        case ir::DType::F64:
            static_cast<double*>(raw)[flat] = static_cast<double>(v);
            break;
        case ir::DType::F32:
            static_cast<float*>(raw)[flat] =
                static_cast<float>(static_cast<double>(v));
            break;
        case ir::DType::I64: static_cast<std::int64_t*>(raw)[flat] = v; break;
        case ir::DType::I32:
            static_cast<std::int32_t*>(raw)[flat] = static_cast<std::int32_t>(v);
            break;
    }
}

}  // namespace

StatePlan Interpreter::build_plan(const ir::SDFG& sdfg, const ir::State& state) {
    const auto topo = state.graph().topological_order();
    if (!topo) throw common::ValidationError("state '" + state.name() + "' has a dataflow cycle");

    // parent[n] = innermost enclosing MapEntry (kInvalidNode at top level).
    std::map<NodeId, NodeId> parent;
    for (NodeId n : *topo) parent[n] = graph::kInvalidNode;
    struct ScopeInfo {
        NodeId entry;
        std::set<NodeId> inside;
    };
    std::vector<ScopeInfo> scopes;
    for (NodeId n : *topo) {
        if (state.graph().node(n).kind == NodeKind::MapEntry)
            scopes.push_back(ScopeInfo{n, state.scope_nodes(n)});
    }
    for (NodeId n : *topo) {
        NodeId best = graph::kInvalidNode;
        std::size_t best_size = 0;
        for (const ScopeInfo& s : scopes) {
            if (!s.inside.count(n)) continue;
            if (best == graph::kInvalidNode || s.inside.size() < best_size) {
                best = s.entry;
                best_size = s.inside.size();
            }
        }
        parent[n] = best;
    }

    StatePlan plan;
    NodeId max_id = -1;
    std::map<NodeId, std::vector<NodeId>> scope_children;
    for (NodeId n : *topo) {
        max_id = std::max(max_id, n);
        const NodeKind k = state.graph().node(n).kind;
        if (k == NodeKind::MapExit) continue;  // executed with its entry
        const NodeId p = parent[n];
        if (p == graph::kInvalidNode) plan.top_level.push_back(n);
        else scope_children[p].push_back(n);
    }

    // Per-tasklet memlet access plans and per-scope iteration plans.  Both
    // are engine-independent (the reference path simply ignores the tasklet
    // plans), so one shared plan serves interpreters of either config.
    sym::SymbolTable& tab = plans_->symbols();
    std::vector<sym::SymId> used;

    plan.node_to_plan.assign(static_cast<std::size_t>(max_id + 1), -1);
    plan.node_to_scope.assign(static_cast<std::size_t>(max_id + 1), -1);
    int cache_counter = 0;
    for (NodeId n : *topo) {
        const DataflowNode& node = state.graph().node(n);
        if (node.kind == NodeKind::Tasklet) {
            TaskletPlan tp;
            build_tasklet_plan(sdfg, state, n, tp, cache_counter, used);
            plan.node_to_plan[static_cast<std::size_t>(n)] =
                static_cast<int>(plan.tasklet_plans.size());
            plan.tasklet_plans.push_back(std::move(tp));
        } else if (node.kind == NodeKind::MapEntry) {
            ScopePlan sp;
            sp.label = node.label;
            for (std::size_t i = 0; i < node.params.size(); ++i) {
                const sym::SymId id = tab.intern(node.params[i]);
                sp.params.push_back(id);
                sp.param_names.push_back(&node.params[i]);
                // Referenced so a same-named free symbol (shadowing) is
                // mirrored; the scope save/restore handles the rest.
                if (std::find(used.begin(), used.end(), id) == used.end())
                    used.push_back(id);
                sp.ranges.push_back(lower_range(node.map_ranges[i], tab, used));
            }
            sp.children = std::move(scope_children[n]);
            plan.node_to_scope[static_cast<std::size_t>(n)] =
                static_cast<int>(plan.scope_plans.size());
            plan.scope_plans.push_back(std::move(sp));
        }
    }
    plan.cache_slots = cache_counter;

    // Scope purity, innermost-first (reverse topological order guarantees a
    // nested entry is classified before its parent).
    for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
        const NodeId n = *it;
        if (state.graph().node(n).kind != NodeKind::MapEntry) continue;
        ScopePlan& sp = plan.scope_plans[static_cast<std::size_t>(
            plan.node_to_scope[static_cast<std::size_t>(n)])];
        bool pure = true;
        for (NodeId c : sp.children) {
            const NodeKind k = state.graph().node(c).kind;
            if (k == NodeKind::Tasklet) {
                const TaskletPlan* tp = plan.plan_of(c);
                pure = pure && tp && !tp->use_reference;
            } else if (k == NodeKind::MapEntry) {
                pure = pure && plan.scope_of(c).pure;
            } else {
                // Access copies, library and comm nodes read ctx.symbols.
                pure = false;
            }
        }
        sp.pure = pure;
    }

    // Specialization tier: flat-stride kernels for qualifying scopes.
    std::int64_t f64_count = 0, i64_count = 0;
    for (const TaskletPlan& tp : plan.tasklet_plans) {
        f64_count += tp.sig == VMSig::F64 ? 1 : 0;
        i64_count += tp.sig == VMSig::I64 ? 1 : 0;
    }
    std::int64_t specialized = 0, segmented = 0;
    for (ScopePlan& sp : plan.scope_plans) {
        classify_scope_kernel(sdfg, state, plan, sp);
        specialized += sp.kernel >= 0 ? 1 : 0;
        if (sp.kernel >= 0 && plan.kernels[static_cast<std::size_t>(sp.kernel)].segment_ok)
            ++segmented;
    }
    plans_->note_classification(static_cast<std::int64_t>(plan.scope_plans.size()), specialized,
                                segmented, static_cast<std::int64_t>(plan.tasklet_plans.size()),
                                f64_count, i64_count);

    // Def-use pair id bases (feedback/coverage.h).  The atlas enumerates the
    // same accesses in the same order as the tasklet plans above, so each
    // plan's j-th access takes base + j * kNumClasses.  Plans are shared
    // between coverage-on and coverage-off interpreters; ExecConfig::coverage
    // gates marking, not planning.
    {
        ir::StateId sid = graph::kInvalidNode;
        for (const ir::StateId s : sdfg.states())
            if (&sdfg.state(s) == &state) {
                sid = s;
                break;
            }
        const auto atlas = plans_->atlas_for(sdfg);
        for (NodeId n : *topo) {
            const int pi = static_cast<std::size_t>(n) < plan.node_to_plan.size()
                               ? plan.node_to_plan[static_cast<std::size_t>(n)]
                               : -1;
            if (pi < 0) continue;
            TaskletPlan& tp = plan.tasklet_plans[static_cast<std::size_t>(pi)];
            const std::int64_t base = atlas->base_of(sid, n);
            if (base < 0) continue;  // unconnected tasklet: not enumerated
            const std::size_t accesses = tp.inputs.size() + tp.outputs.size();
            tp.cov_bases.reserve(accesses);
            for (std::size_t j = 0; j < accesses; ++j)
                tp.cov_bases.push_back(static_cast<std::uint32_t>(base) +
                                       static_cast<std::uint32_t>(j) * feedback::kNumClasses);
        }
        for (ScopePlan& sp : plan.scope_plans) {
            for (NodeId c : sp.children) {
                const TaskletPlan* tp = plan.plan_of(c);
                if (!tp) continue;
                sp.cov_bases.insert(sp.cov_bases.end(), tp->cov_bases.begin(),
                                    tp->cov_bases.end());
            }
        }
    }

    plan.referenced.reserve(used.size());
    for (const sym::SymId id : used) plan.referenced.emplace_back(id, tab.name(id));
    plan.symtab_size = tab.size();
    return plan;
}

void Interpreter::classify_scope_kernel(const ir::SDFG& sdfg, const ir::State& state,
                                        StatePlan& plan, ScopePlan& sp) {
    const std::size_t nparams = sp.params.size();
    if (!sp.pure || nparams == 0) return;

    // Range bounds must be evaluable once at scope entry: no bound may
    // reference the scope's own parameters (triangular nests stay generic).
    for (const RangePlan& r : sp.ranges)
        if (r.begin.uses_any(sp.params.data(), nparams) ||
            r.end.uses_any(sp.params.data(), nparams) ||
            r.step.uses_any(sp.params.data(), nparams))
            return;

    ScopeKernel kern;
    for (const ir::NodeId c : sp.children) {
        if (state.graph().node(c).kind != NodeKind::Tasklet) return;  // nested scope etc.
        const TaskletPlan* tp = plan.plan_of(c);
        if (!tp || tp->use_reference) return;
        // Input validation must be statically satisfied: single-point
        // gathers deliver exactly one lane, so any wider (or unbound)
        // declared input would throw per point — leave that to the generic
        // path.
        for (const TaskletPlan::InputCheck& check : tp->input_checks)
            if (check.input_index < 0 || check.width > 1) return;
        // The committed point loop must be throw-free: lane buffers are
        // pre-allocated at launch, so a tasklet throwing mid-loop would
        // leave different partial allocations than the lazily-allocating
        // generic path.  Trap instructions always throw when reached;
        // integer division/modulo can throw on a zero divisor — allowed
        // only when the f64 feasibility proof (all inputs arrive as
        // doubles, so the int division path is unreachable) applies, i.e.
        // the program is feasible and every input container is float.
        if (!tp->prog->trap_connectors().empty()) return;
        if (tp->prog->has_div_mod()) {
            bool floats_only = tp->prog->has_f64_variant();
            for (const AccessPlan& ap : tp->inputs)
                floats_only = floats_only && sdfg.has_container(ap.memlet->data) &&
                              ir::dtype_is_float(sdfg.container(ap.memlet->data).dtype);
            if (!floats_only) return;
        }
        const int tindex = static_cast<int>(kern.tasklets.size());
        auto classify_access = [&](const AccessPlan& ap, bool output, int index) {
            if (!ap.single_point || ap.invalid || ap.passthrough_pool >= 0) return false;
            if (output && ap.slot_base < 0) return false;
            if (!sdfg.has_container(ap.memlet->data)) return false;
            const ir::DataDesc& desc = sdfg.container(ap.memlet->data);
            // Rank mismatches raise inside the loop on the generic path.
            if (desc.dims() != ap.dims.size()) return false;
            KernelAccess ka;
            ka.tasklet = tindex;
            ka.output = output;
            ka.index = index;
            ka.coeffs.reserve(ap.dims.size() * nparams);
            for (const ir::Range& r : ap.memlet->subset.ranges) {
                // single_point: begin == end structurally, begin is the index.
                const auto coeffs = ir::affine_coefficients(r.begin, sp.param_names);
                if (!coeffs) return false;
                ka.coeffs.insert(ka.coeffs.end(), coeffs->begin(), coeffs->end());
            }
            kern.accesses.push_back(std::move(ka));
            return true;
        };
        for (std::size_t i = 0; i < tp->inputs.size(); ++i)
            if (!classify_access(tp->inputs[i], false, static_cast<int>(i))) return;
        for (std::size_t i = 0; i < tp->outputs.size(); ++i)
            if (!classify_access(tp->outputs[i], true, static_cast<int>(i))) return;
        kern.tasklets.push_back(plan.node_to_plan[static_cast<std::size_t>(c)]);
    }

    // Segment eligibility: every tasklet runs an untagged VM (so lanes move
    // through raw storage) and is straight-line (so the vertical batch VMs
    // apply).  Tagged-sig tasklets are excluded — batching them would
    // re-introduce per-element tag dispatch for no gain.  Note integer
    // Div/Mod can never reach here: the throw-free gate above only admits
    // div/mod under the f64 feasibility proof.
    kern.segment_ok = !kern.tasklets.empty();
    for (const int t : kern.tasklets) {
        const TaskletPlan& tp = plan.tasklet_plans[static_cast<std::size_t>(t)];
        kern.segment_ok =
            kern.segment_ok && tp.sig != VMSig::Tagged && tp.prog->is_straightline();
    }

    sp.kernel = static_cast<int>(plan.kernels.size());
    plan.kernels.push_back(std::move(kern));
}

void Interpreter::build_tasklet_plan(const ir::SDFG& sdfg, const ir::State& state, NodeId nid,
                                     TaskletPlan& tp, int& cache_counter,
                                     std::vector<sym::SymId>& used) {
    const DataflowNode& node = state.graph().node(nid);
    tp.prog = program_for(node.code);
    tp.label = node.label;
    const TaskletProgram& prog = *tp.prog;
    sym::SymbolTable& tab = plans_->symbols();

    auto lower_dims = [&](AccessPlan& ap) {
        ap.dims.reserve(ap.memlet->subset.ranges.size());
        for (const ir::Range& r : ap.memlet->subset.ranges)
            ap.dims.push_back(lower_range(r, tab, used));
    };

    std::set<std::string> bound;
    for (graph::EdgeId eid : state.graph().in_edges(nid)) {
        const auto& edge = state.graph().edge(eid).data;
        if (edge.dst_conn.empty()) continue;  // ordering-only dependency edge
        AccessPlan ap;
        ap.memlet = &edge.memlet;
        ap.conn = edge.dst_conn;
        for (const SlotDesc& sd : prog.slot_table()) {
            if (sd.name == edge.dst_conn) {
                ap.slot_base = sd.base;
                ap.width = sd.width;
                break;
            }
        }
        analyze_subset(ap);
        lower_dims(ap);
        ap.cache_index = cache_counter++;
        bound.insert(edge.dst_conn);
        for (const std::string& t : prog.trap_connectors())
            if (t == edge.dst_conn) tp.use_reference = true;
        tp.inputs.push_back(std::move(ap));
    }

    // reads() name order = the reference engine's check order.  Multiple
    // edges binding one connector: the last gather wins in both engines, so
    // validate against the last matching input.
    for (const auto& [name, width] : prog.reads()) {
        TaskletPlan::InputCheck check;
        check.conn = name;
        check.width = width;
        for (std::size_t i = 0; i < tp.inputs.size(); ++i)
            if (tp.inputs[i].conn == name) check.input_index = static_cast<int>(i);
        tp.input_checks.push_back(std::move(check));
    }

    int next_pool = 0;
    for (graph::EdgeId eid : state.graph().out_edges(nid)) {
        const auto& edge = state.graph().edge(eid).data;
        AccessPlan ap;
        ap.memlet = &edge.memlet;
        ap.conn = edge.src_conn;
        for (const SlotDesc& sd : prog.slot_table()) {
            if (sd.name == edge.src_conn) {
                ap.slot_base = sd.base;
                ap.width = sd.width;
                break;
            }
        }
        if (ap.slot_base < 0) {
            if (bound.count(edge.src_conn)) {
                // The program never mentions this connector: the edge
                // forwards the gathered input values unchanged.  Stage the
                // pre-execution snapshot in a passthrough pool so an earlier
                // output writing the same container cannot alter it.
                for (AccessPlan& in : tp.inputs)
                    if (in.conn == edge.src_conn) {
                        if (in.passthrough_pool < 0) in.passthrough_pool = next_pool++;
                        ap.passthrough_pool = in.passthrough_pool;
                        break;
                    }
            } else {
                ap.invalid = true;  // raised when this edge executes
            }
        } else {
            // Connector used by the program *and* bound as an input: the
            // reference engine scatters the full gathered vector, which can
            // exceed the compiled slot width when the input memlet is larger
            // than the referenced lanes — only then do the engines diverge,
            // so run such nodes on the reference engine.
            for (const AccessPlan& in : tp.inputs)
                if (in.conn == edge.src_conn &&
                    (in.const_volume < 0 || in.const_volume > ap.width))
                    tp.use_reference = true;
        }
        analyze_subset(ap);
        lower_dims(ap);
        ap.cache_index = cache_counter++;
        tp.outputs.push_back(std::move(ap));
    }

    // Dtype-signature selection (see VMSig): program-side feasibility
    // (proved at parse time under the all-inputs-arrive-as-the-family
    // assumption) plus graph-side facts.  Every *input* must bind a
    // single-point subset of a matching-family container — F32 inputs work
    // on the f64 engine because the tagged VM already promotes F32 loads to
    // double (Buffer::load), so computing in double is what the tagged path
    // does anyway.  *Outputs* bind a single-point subset of any dtype: the
    // untagged scatter conversions mirror Buffer::store's casts on the
    // tagged result exactly (including int64 -> float via double).  No
    // passthrough staging or invalid outputs on either side.
    auto untagged_ok = [&](bool float_family) {
        auto shape_ok = [&](const AccessPlan& ap) {
            return ap.single_point && !ap.invalid && ap.passthrough_pool < 0 &&
                   sdfg.has_container(ap.memlet->data);
        };
        for (const AccessPlan& ap : tp.inputs) {
            if (!shape_ok(ap)) return false;
            if (ir::dtype_is_float(sdfg.container(ap.memlet->data).dtype) != float_family)
                return false;
        }
        for (const AccessPlan& ap : tp.outputs)
            if (!shape_ok(ap)) return false;
        return true;
    };
    if (!tp.use_reference) {
        if (prog.has_f64_variant() && untagged_ok(/*float_family=*/true))
            tp.sig = VMSig::F64;
        else if (prog.has_i64_variant() && untagged_ok(/*float_family=*/false))
            tp.sig = VMSig::I64;
    }
}

const StatePlan& Interpreter::plan_for(const ir::SDFG& sdfg, const ir::State& state) {
    const PlanKey key{sdfg.plan_uid(), sdfg.mutation_epoch(), &state};
    auto it = plan_memo_.find(key);
    if (it == plan_memo_.end()) {
        // Drop memo entries of this SDFG from older mutation epochs: they
        // can never hit again (epochs only grow), and a warm interpreter
        // reused across many transformations must not accumulate them.
        const auto first = plan_memo_.lower_bound(PlanKey{sdfg.plan_uid(), 0, nullptr});
        const auto last =
            plan_memo_.lower_bound(PlanKey{sdfg.plan_uid(), sdfg.mutation_epoch(), nullptr});
        plan_memo_.erase(first, last);
        auto plan = plans_->get_or_build(key, [&] { return build_plan(sdfg, state); });
        it = plan_memo_.emplace(key, std::move(plan)).first;
    }
    return *it->second;
}

void Interpreter::sync_flat_bindings(const StatePlan& plan, const Context& ctx) {
    Scratch& s = scratch_;
    s.flat.reset(plan.symtab_size);
    s.eval_stack.clear();
    s.param_stack.clear();
    s.active_params.clear();
    for (const auto& [id, name] : plan.referenced) {
        auto it = ctx.symbols.find(name);
        if (it != ctx.symbols.end()) s.flat.bind(id, it->second);
    }
}

void Interpreter::invalidate_execution_cache() {
    scratch_.cache_plan = nullptr;
    scratch_.cache_ctx = nullptr;
}

void Interpreter::rebind_plan_cache(PlanCachePtr plans) {
    plans_ = plans ? std::move(plans) : std::make_shared<PlanCache>();
    // The memo holds shared_ptrs into the *previous* cache; plans compiled
    // against a different cache's symbol table must never be mixed, so the
    // memo goes with it.  Scratch stays: its vectors are sized per state on
    // entry and reusing their capacity is the point of rebinding.
    plan_memo_.clear();
    invalidate_execution_cache();
}

ExecResult Interpreter::run(const ir::SDFG& sdfg, Context& ctx) {
    ExecResult result;
    invalidate_execution_cache();
    points_used_ = 0;
    instructions_used_ = 0;
    alloc_used_ = 0;
    try {
        ir::StateId current = sdfg.start_state();
        while (true) {
            execute_state(sdfg, sdfg.state(current), ctx);

            // Pick the first matching transition, in edge insertion order.
            ir::StateId next = graph::kInvalidNode;
            const ir::InterstateEdge* taken = nullptr;
            for (graph::EdgeId eid : sdfg.cfg().out_edges(current)) {
                const auto& e = sdfg.cfg().edge(eid);
                if (!e.data.condition || e.data.condition->evaluate(ctx.symbols)) {
                    next = e.dst;
                    taken = &e.data;
                    break;
                }
            }
            if (next == graph::kInvalidNode) break;  // terminate

            // Simultaneous assignment: evaluate all RHS under old bindings.
            std::vector<std::pair<std::string, std::int64_t>> updates;
            updates.reserve(taken->assignments.size());
            for (const auto& [symbol, expr] : taken->assignments)
                updates.emplace_back(symbol, expr->evaluate(ctx.symbols));
            for (const auto& [symbol, value] : updates) ctx.symbols[symbol] = value;

            if (++result.state_transitions > config_.max_state_transitions)
                throw common::HangError(config_.max_state_transitions);

            current = next;
        }
    } catch (const common::HangError& e) {
        result.status = ExecStatus::Hang;
        result.message = e.what();
    } catch (const common::ResourceError& e) {
        result.status = ExecStatus::Resource;
        result.message = e.what();
    } catch (const std::exception& e) {
        result.status = ExecStatus::Crash;
        result.message = e.what();
    }
    // Cost counters are byte-identical across execution tiers only for Ok
    // results (see ExecResult); they are still reported on error paths for
    // diagnostics.
    result.points = points_used_;
    result.instructions = instructions_used_;
    return result;
}

void Interpreter::execute_state(const ir::SDFG& sdfg, const ir::State& state, Context& ctx) {
    const StatePlan& plan = plan_for(sdfg, state);
    invalidate_execution_cache();
    sync_flat_bindings(plan, ctx);
    for (NodeId nid : plan.top_level) {
        execute_node_planned(sdfg, state, plan, nid, ctx);
        if (cov_map_) {
            // A top-level tasklet executes exactly once: its accesses hit
            // region class 1 (one point).  Scope-enclosed tasklets are
            // marked at launch granularity by execute_scope instead.
            if (const TaskletPlan* tp = plan.plan_of(nid))
                for (const std::uint32_t base : tp->cov_bases) cov_map_->mark(base + 1);
        }
    }
}

void Interpreter::execute_node(const ir::SDFG& sdfg, const ir::State& state, NodeId nid,
                               Context& ctx) {
    const StatePlan& plan = plan_for(sdfg, state);
    sync_flat_bindings(plan, ctx);
    execute_node_planned(sdfg, state, plan, nid, ctx);
}

void Interpreter::execute_node_planned(const ir::SDFG& sdfg, const ir::State& state,
                                       const StatePlan& plan, NodeId nid, Context& ctx) {
    const DataflowNode& node = state.graph().node(nid);
    switch (node.kind) {
        case NodeKind::Access:
            ensure_buffer(sdfg, ctx, node.data);
            execute_access_copies(sdfg, state, nid, ctx);
            break;
        case NodeKind::Tasklet: {
            const TaskletPlan* tp = config_.use_compiled_tasklets ? plan.plan_of(nid) : nullptr;
            if (tp && !tp->use_reference) execute_tasklet_planned(sdfg, state, plan, *tp, ctx);
            else execute_tasklet(sdfg, state, nid, ctx);
            break;
        }
        case NodeKind::Library: execute_library(*this, sdfg, state, nid, ctx); break;
        case NodeKind::Comm: execute_comm_single_rank(sdfg, state, nid, ctx); break;
        case NodeKind::MapEntry: execute_scope(sdfg, state, plan, nid, ctx); break;
        case NodeKind::MapExit: break;
    }
}

void Interpreter::execute_scope(const ir::SDFG& sdfg, const ir::State& state,
                                const StatePlan& plan, NodeId entry, Context& ctx) {
    const ScopePlan& sp = plan.scope_of(entry);
    const std::size_t nparams = sp.params.size();
    Scratch& s = scratch_;
    // Pure scopes iterate entirely in the flat bindings: parameter binding
    // is an array store.  Impure scopes (library/comm/access/reference-
    // engine nodes inside) additionally maintain the string-keyed Context
    // bindings those nodes read, exactly like the legacy engine.
    const bool interned_only = config_.use_compiled_tasklets && sp.pure;

    // Save shadowed bindings (stack discipline on reusable scratch vectors:
    // nested scopes push above their parent, no steady-state allocation).
    const std::size_t pbase = s.param_stack.size();
    const std::size_t abase = s.active_params.size();
    for (std::size_t i = 0; i < nparams; ++i) {
        Scratch::SavedParam sv;
        sv.id = sp.params[i];
        sv.flat_bound = s.flat.is_bound(sv.id);
        sv.flat_value = sv.flat_bound ? s.flat.value(sv.id) : 0;
        sv.str_bound = false;
        sv.str_value = 0;
        if (!interned_only) {
            auto it = ctx.symbols.find(*sp.param_names[i]);
            if (it != ctx.symbols.end()) {
                sv.str_bound = true;
                sv.str_value = it->second;
            }
        }
        s.param_stack.push_back(sv);
        s.active_params.push_back(Scratch::ActiveParam{sp.param_names[i], 0});
    }

    // Coverage is charged per launch from the launch's point-fuel delta:
    // the kernel tier pre-charges the same total the generic odometer
    // accumulates (contract clause 8), so the region class — and with it the
    // bitmap — is byte-identical across tiers.
    const std::int64_t cov_snapshot = points_used_;

    // Flat-stride kernel: when the scope classified at plan time and this
    // launch's ranks/footprint validate, the whole nest runs over
    // precomputed flat-offset advances (execute_scope_kernel); otherwise
    // fall through to the generic odometer below, which reproduces the
    // unspecialized path's exact effects and errors.
    bool kernel_done = false;
    if (interned_only && config_.specialize && sp.kernel >= 0) {
        kernel_done = execute_scope_kernel(
            sdfg, plan, sp, plan.kernels[static_cast<std::size_t>(sp.kernel)], ctx);
        plans_->note_kernel_launch(kernel_done);
    }

    // Iterate the cartesian product of ranges.  Bounds are evaluated per
    // level because they may reference parameters of enclosing scopes.
    auto iterate = [&](auto&& self, std::size_t level) -> void {
        if (level == nparams) {
            // One map point.  The fuel check fires *before* the point's
            // children execute, so the kernel path's launch-entry pre-charge
            // (execute_scope_kernel) detects exhaustion of the same budget
            // with the same message — byte-identical results either way.
            points_used_ = saturating_add(points_used_, 1);
            if (config_.max_points > 0 && points_used_ > config_.max_points)
                throw common::ResourceError::points(config_.max_points);
            for (NodeId child : sp.children)
                execute_node_planned(sdfg, state, plan, child, ctx);
            return;
        }
        const RangePlan& r = sp.ranges[level];
        const std::int64_t begin = r.begin.eval(s.flat, s.eval_stack);
        const std::int64_t end = r.end.eval(s.flat, s.eval_stack);
        const std::int64_t step = r.step.eval(s.flat, s.eval_stack);
        if (step == 0) throw common::Error("map '" + sp.label + "' has step 0");
        const sym::SymId id = sp.params[level];
        for (std::int64_t v = begin; step > 0 ? v <= end : v >= end; v += step) {
            s.flat.bind(id, v);
            s.active_params[abase + level].value = v;
            if (!interned_only) ctx.symbols[*sp.param_names[level]] = v;
            self(self, level + 1);
        }
    };
    if (!kernel_done) iterate(iterate, 0);

    if (cov_map_ && !sp.cov_bases.empty()) {
        const std::uint32_t cls =
            static_cast<std::uint32_t>(feedback::region_class(points_used_ - cov_snapshot));
        for (const std::uint32_t base : sp.cov_bases) cov_map_->mark(base + cls);
    }

    // Restore bindings.
    for (std::size_t i = 0; i < nparams; ++i) {
        const Scratch::SavedParam& sv = s.param_stack[pbase + i];
        if (sv.flat_bound) s.flat.bind(sv.id, sv.flat_value);
        else s.flat.unbind(sv.id);
        if (!interned_only) {
            if (sv.str_bound) ctx.symbols[*sp.param_names[i]] = sv.str_value;
            else ctx.symbols.erase(*sp.param_names[i]);
        }
    }
    s.param_stack.resize(pbase);
    s.active_params.resize(abase);
}

bool Interpreter::execute_scope_kernel(const ir::SDFG& sdfg, const StatePlan& plan,
                                       const ScopePlan& sp, const ScopeKernel& kern,
                                       Context& ctx) {
    Scratch& s = scratch_;
    const std::size_t nparams = sp.params.size();
    const std::size_t nlanes = kern.accesses.size();
    // Caller (execute_scope) pushed this scope's active_params block.
    const std::size_t abase = s.active_params.size() - nparams;

    // The kernel bypasses execute_tasklet_planned, so it owns the Buffer*
    // cache guard its per-point loop relies on.
    if (s.cache_plan != &plan || s.cache_ctx != &ctx) {
        s.buffer_cache.assign(static_cast<std::size_t>(plan.cache_slots), nullptr);
        s.cache_plan = &plan;
        s.cache_ctx = &ctx;
    }

    // 1. Ranges, level by level: an empty level returns before a deeper
    // level's step-0 / unbound-symbol error fires, exactly like the generic
    // path (whose inner levels are never evaluated under an empty outer one).
    s.kbegin.resize(nparams);
    s.kstep.resize(nparams);
    s.kcount.resize(nparams);
    for (std::size_t k = 0; k < nparams; ++k) {
        const RangePlan& r = sp.ranges[k];
        const std::int64_t begin = r.begin.eval(s.flat, s.eval_stack);
        const std::int64_t end = r.end.eval(s.flat, s.eval_stack);
        const std::int64_t step = r.step.eval(s.flat, s.eval_stack);
        if (step == 0) throw common::Error("map '" + sp.label + "' has step 0");
        const std::int64_t count =
            ir::concrete_range_size(ir::ConcreteRange{begin, end, step});
        if (count == 0) return true;  // empty nest: nothing executes, committed
        // Extents past 2^31 make no throughput difference either way; keep
        // the footprint arithmetic comfortably inside __int128.
        if (count > (std::int64_t{1} << 31)) return false;
        s.kbegin[k] = begin;
        s.kstep[k] = step;
        s.kcount[k] = count;
    }

    // 2. Bind parameters to the begin point, so base-index evaluation and
    // any lazy buffer-shape resolution see exactly what the generic path's
    // first iteration would.
    for (std::size_t k = 0; k < nparams; ++k) {
        s.flat.bind(sp.params[k], s.kbegin[k]);
        s.active_params[abase + k].value = s.kbegin[k];
    }

    // 3. Per access, in the generic path's first-point order: ensure the
    // buffer, evaluate the base index, validate rank and the whole iteration
    // footprint, and fold the affine coefficients into flat-offset deltas.
    // Any validation failure — *including* anything thrown (shape
    // resolution, unbound index symbol) — falls back: the generic odometer
    // owns error semantics outright, re-raising from the exact point the
    // unspecialized run would (with earlier sibling tasklets' first-point
    // effects in place, which this pre-pass must not shortcut).  Everything
    // attempted here is idempotent (allocation, pure evaluation), so the
    // replay is byte-identical.
    s.lanes.resize(nlanes);
    s.lane_delta.assign(nlanes * nparams, 0);
    const auto setup_lane = [&](std::size_t a) {
        const KernelAccess& ka = kern.accesses[a];
        const TaskletPlan& tp =
            plan.tasklet_plans[static_cast<std::size_t>(kern.tasklets[ka.tasklet])];
        const AccessPlan& ap =
            ka.output ? tp.outputs[static_cast<std::size_t>(ka.index)]
                      : tp.inputs[static_cast<std::size_t>(ka.index)];
        Buffer& buf = plan_buffer(sdfg, ctx, plan, ap);
        Scratch::KernelLane& lane = s.lanes[a];
        lane.buf = &buf;
        lane.raw = nullptr;
        lane.dt = buf.dtype();
        lane.slot = ap.slot_base;
        const std::size_t dims = ap.dims.size();
        if (buf.dims() != dims) return false;  // generic raises rank mismatch
        if (tp.sig != VMSig::Tagged) {
            // Input dtype drift outside the signature's family: the generic
            // tagged path handles any dtype.  Outputs convert on store, so
            // only their raw pointer matters.
            if (!ka.output &&
                ir::dtype_is_float(lane.dt) != (tp.sig == VMSig::F64))
                return false;
            lane.raw = raw_data_of(buf);
            if (!lane.raw) return false;  // defensive
        }
        const auto& shape = buf.shape();
        const auto& strides = buf.strides();
        __int128 flat0 = 0;
        for (std::size_t d = 0; d < dims; ++d) {
            const std::int64_t base = ap.dims[d].begin.eval(s.flat, s.eval_stack);
            __int128 lo = base, hi = base;
            for (std::size_t k = 0; k < nparams; ++k) {
                const __int128 travel = static_cast<__int128>(ka.coeffs[d * nparams + k]) *
                                        (s.kcount[k] - 1) * s.kstep[k];
                (travel < 0 ? lo : hi) += travel;
            }
            if (lo < 0 || hi >= shape[d]) return false;  // could fault: generic raises
            flat0 += static_cast<__int128>(base) * strides[d];
        }
        // Every point's offset is now proven in [0, size), so every delta —
        // a difference of reachable offsets — fits an int64.
        lane.offset = static_cast<std::int64_t>(flat0);
        std::int64_t* delta = &s.lane_delta[a * nparams];
        std::int64_t suffix = 0;  // full traversal of the levels below k
        for (std::size_t k = nparams; k-- > 0;) {
            std::int64_t adv = 0;
            if (s.kcount[k] > 1)
                for (std::size_t d = 0; d < dims; ++d)
                    adv += ka.coeffs[d * nparams + k] * s.kstep[k] * strides[d];
            delta[k] = adv - suffix;
            suffix += adv * (s.kcount[k] - 1);
        }
        return true;
    };
    try {
        for (std::size_t a = 0; a < nlanes; ++a)
            if (!setup_lane(a)) return false;
    } catch (...) {
        return false;  // generic replay re-raises from the right point
    }

    // 3.5. Resource accounting, whole launch at once: the committed loop
    // below cannot raise (footprint proven in bounds, throw-free tasklet
    // programs by classification), so the generic path run on the same
    // launch either completes every point or hits the same fuel exhaustion
    // — charging up front is observationally identical and keeps the loop
    // check-free.  Charged after lane setup so a fallback never
    // double-counts.
    const std::size_t ntasklets = kern.tasklets.size();
    {
        __int128 total = 1;
        for (std::size_t k = 0; k < nparams; ++k) total *= s.kcount[k];
        if (config_.max_points > 0 &&
            static_cast<__int128>(points_used_) + total > config_.max_points)
            throw common::ResourceError::points(config_.max_points);
        points_used_ = saturating_add(points_used_, total);
        instructions_used_ =
            saturating_add(instructions_used_, total * static_cast<__int128>(ntasklets));
    }

    // 3.75. Segment (batched) execution: when the kernel is
    // segment-eligible, the knob is on, and this launch's concrete lane
    // windows are alias-safe, run the whole innermost extent per dispatch
    // through the vertical batch VMs.  Falls through to the per-point loop
    // below (still a committed launch — same results, point at a time)
    // when any condition fails.
    const std::size_t inner = nparams - 1;
    const std::int64_t seg_len = s.kcount[inner];
    if (kern.segment_ok && config_.batch_segments && seg_len > 1 &&
        segment_alias_safe(kern, nparams, seg_len)) {
        run_segment_kernel(plan, kern, nparams, seg_len);
        plans_->note_segment_launch();
        return true;
    }

    // 4. The loop.  Per point: gather -> VM -> scatter per tasklet through
    // the lanes; advancing to the next point is one add per lane.
    s.kiter.assign(nparams, 0);
    for (;;) {
        std::size_t a = 0;
        for (std::size_t t = 0; t < ntasklets; ++t) {
            const TaskletPlan& tp =
                plan.tasklet_plans[static_cast<std::size_t>(kern.tasklets[t])];
            const std::size_t nin = tp.inputs.size();
            const std::size_t nout = tp.outputs.size();
            if (tp.sig == VMSig::F64) {
                const std::size_t nslots = static_cast<std::size_t>(tp.prog->slot_count());
                const std::size_t nregs = static_cast<std::size_t>(tp.prog->reg_count());
                if (s.f64_slots.size() < nslots) s.f64_slots.resize(nslots);
                std::fill_n(s.f64_slots.begin(), nslots, 0.0);
                if (s.f64_regs.size() < nregs) s.f64_regs.resize(nregs);
                for (std::size_t i = 0; i < nin; ++i, ++a) {
                    const Scratch::KernelLane& lane = s.lanes[a];
                    if (lane.slot >= 0)
                        s.f64_slots[static_cast<std::size_t>(lane.slot)] =
                            load_to_f64(lane.raw, lane.dt, lane.offset);
                }
                tp.prog->execute_f64(s.f64_slots.data(), s.f64_regs.data());
                for (std::size_t i = 0; i < nout; ++i, ++a) {
                    const Scratch::KernelLane& lane = s.lanes[a];
                    store_from_f64(lane.raw, lane.dt, lane.offset,
                                   s.f64_slots[static_cast<std::size_t>(lane.slot)]);
                }
            } else if (tp.sig == VMSig::I64) {
                const std::size_t nslots = static_cast<std::size_t>(tp.prog->slot_count());
                const std::size_t nregs = static_cast<std::size_t>(tp.prog->reg_count());
                if (s.i64_slots.size() < nslots) s.i64_slots.resize(nslots);
                std::fill_n(s.i64_slots.begin(), nslots, std::int64_t{0});
                if (s.i64_regs.size() < nregs) s.i64_regs.resize(nregs);
                for (std::size_t i = 0; i < nin; ++i, ++a) {
                    const Scratch::KernelLane& lane = s.lanes[a];
                    if (lane.slot >= 0)
                        s.i64_slots[static_cast<std::size_t>(lane.slot)] =
                            load_to_i64(lane.raw, lane.dt, lane.offset);
                }
                tp.prog->execute_i64(s.i64_slots.data(), s.i64_regs.data());
                for (std::size_t i = 0; i < nout; ++i, ++a) {
                    const Scratch::KernelLane& lane = s.lanes[a];
                    store_from_i64(lane.raw, lane.dt, lane.offset,
                                   s.i64_slots[static_cast<std::size_t>(lane.slot)]);
                }
            } else {
                const std::size_t nslots = static_cast<std::size_t>(tp.prog->slot_count());
                const std::size_t nregs = static_cast<std::size_t>(tp.prog->reg_count());
                if (s.slots.size() < nslots) s.slots.resize(nslots);
                std::fill_n(s.slots.begin(), nslots, Value{});
                if (s.regs.size() < nregs) s.regs.resize(nregs);
                for (std::size_t i = 0; i < nin; ++i, ++a) {
                    const Scratch::KernelLane& lane = s.lanes[a];
                    if (lane.slot >= 0)
                        s.slots[static_cast<std::size_t>(lane.slot)] =
                            lane.buf->load(lane.offset);
                }
                tp.prog->execute_compiled(s.slots.data(), s.regs.data());
                for (std::size_t i = 0; i < nout; ++i, ++a) {
                    const Scratch::KernelLane& lane = s.lanes[a];
                    lane.buf->store(lane.offset,
                                    s.slots[static_cast<std::size_t>(lane.slot)]);
                }
            }
        }
        // Odometer: find the deepest level that advances; the precomputed
        // delta folds that advance plus every deeper level's reset into one
        // add per lane.
        std::size_t k = nparams - 1;
        for (;;) {
            if (++s.kiter[k] < static_cast<std::int64_t>(s.kcount[k])) break;
            s.kiter[k] = 0;
            if (k == 0) return true;  // every level wrapped: done
            --k;
        }
        for (std::size_t l = 0; l < nlanes; ++l)
            s.lanes[l].offset += s.lane_delta[l * nparams + k];
    }
}

bool Interpreter::segment_alias_safe(const ScopeKernel& kern, std::size_t nparams,
                                     std::int64_t seg_len) const {
    const Scratch& s = scratch_;
    const std::size_t nlanes = kern.accesses.size();
    const std::size_t inner = nparams - 1;
    for (std::size_t w = 0; w < nlanes; ++w) {
        if (!kern.accesses[w].output) continue;
        const std::int64_t wd = s.lane_delta[w * nparams + inner];
        const std::int64_t wo = s.lanes[w].offset;
        for (std::size_t l = 0; l < nlanes; ++l) {
            if (l == w) continue;
            // Inputs with no slot are never loaded (side-effect-only
            // gathers); they cannot observe reordering.
            if (!kern.accesses[l].output && s.lanes[l].slot < 0) continue;
            if (s.lanes[l].buf != s.lanes[w].buf) continue;
            const std::int64_t ld = s.lane_delta[l * nparams + inner];
            const std::int64_t lo = s.lanes[l].offset;
            // Pointwise-aligned: the pair touches each address only at the
            // same inner position, so relative order per address is
            // preserved.  Stride 0 over a multi-point segment is a repeated
            // same-address access — a sequential dependency, not aligned.
            if (wo == lo && wd == ld && wd != 0) continue;
            // Otherwise the windows must be disjoint.  Offsets are proven
            // inside [0, buffer size) by lane setup, so the interval
            // arithmetic cannot overflow.
            const std::int64_t wlo = wd < 0 ? wo + wd * (seg_len - 1) : wo;
            const std::int64_t whi = wd < 0 ? wo : wo + wd * (seg_len - 1);
            const std::int64_t llo = ld < 0 ? lo + ld * (seg_len - 1) : lo;
            const std::int64_t lhi = ld < 0 ? lo : lo + ld * (seg_len - 1);
            if (whi < llo || lhi < wlo) continue;
            return false;
        }
    }
    return true;
}

void Interpreter::run_segment_kernel(const StatePlan& plan, const ScopeKernel& kern,
                                     std::size_t nparams, std::int64_t seg_len) {
    Scratch& s = scratch_;
    const std::size_t nlanes = kern.accesses.size();
    const std::size_t ntasklets = kern.tasklets.size();
    const std::size_t inner = nparams - 1;

    // Column arenas: tile the segment so scratch stays cache-resident, sized
    // once for the largest program of each signature.  Tile-outer /
    // tasklet-inner order: within a tile every tasklet sees its
    // predecessors' stores for the whole tile — for pointwise-aligned
    // dependencies (the only cross-lane interaction the alias check admits)
    // that is exactly per-point order.
    constexpr std::int64_t kTile = 256;
    std::size_t f64_cols = 0, i64_cols = 0;
    for (std::size_t t = 0; t < ntasklets; ++t) {
        const TaskletPlan& tp = plan.tasklet_plans[static_cast<std::size_t>(kern.tasklets[t])];
        const std::size_t cols = static_cast<std::size_t>(tp.prog->slot_count()) +
                                 static_cast<std::size_t>(tp.prog->reg_count());
        if (tp.sig == VMSig::F64) f64_cols = std::max(f64_cols, cols);
        else i64_cols = std::max(i64_cols, cols);
    }
    const auto tile_sz = static_cast<std::size_t>(kTile);
    if (s.seg_f64.size() < f64_cols * tile_sz) s.seg_f64.resize(f64_cols * tile_sz);
    if (s.seg_i64.size() < i64_cols * tile_sz) s.seg_i64.resize(i64_cols * tile_sz);

    // Lane offsets stay at the segment's start point; addresses inside a
    // segment are offset + j * inner-stride.
    s.kiter.assign(nparams, 0);
    for (;;) {
        for (std::int64_t j0 = 0; j0 < seg_len; j0 += kTile) {
            const std::int64_t tn = std::min(kTile, seg_len - j0);
            std::size_t a = 0;
            for (std::size_t t = 0; t < ntasklets; ++t) {
                const TaskletPlan& tp =
                    plan.tasklet_plans[static_cast<std::size_t>(kern.tasklets[t])];
                const std::size_t nin = tp.inputs.size();
                const std::size_t nout = tp.outputs.size();
                const auto nslots = static_cast<std::int64_t>(tp.prog->slot_count());
                if (tp.sig == VMSig::F64) {
                    double* cols = s.seg_f64.data();
                    double* regs = cols + nslots * tn;
                    std::fill_n(cols, static_cast<std::size_t>(nslots * tn), 0.0);
                    for (std::size_t i = 0; i < nin; ++i, ++a) {
                        const Scratch::KernelLane& lane = s.lanes[a];
                        if (lane.slot < 0) continue;
                        const std::int64_t d = s.lane_delta[a * nparams + inner];
                        const std::int64_t base = lane.offset + j0 * d;
                        double* col = cols + static_cast<std::int64_t>(lane.slot) * tn;
                        if (lane.dt == ir::DType::F64) {
                            const double* src = static_cast<const double*>(lane.raw) + base;
                            for (std::int64_t j = 0; j < tn; ++j) col[j] = src[j * d];
                        } else {
                            const float* src = static_cast<const float*>(lane.raw) + base;
                            for (std::int64_t j = 0; j < tn; ++j)
                                col[j] = static_cast<double>(src[j * d]);
                        }
                    }
                    tp.prog->execute_f64_batch(cols, regs, tn);
                    for (std::size_t i = 0; i < nout; ++i, ++a) {
                        const Scratch::KernelLane& lane = s.lanes[a];
                        const std::int64_t d = s.lane_delta[a * nparams + inner];
                        const std::int64_t base = lane.offset + j0 * d;
                        const double* col = cols + static_cast<std::int64_t>(lane.slot) * tn;
                        switch (lane.dt) {
                            case ir::DType::F64: {
                                double* dst = static_cast<double*>(lane.raw) + base;
                                for (std::int64_t j = 0; j < tn; ++j) dst[j * d] = col[j];
                                break;
                            }
                            case ir::DType::F32: {
                                float* dst = static_cast<float*>(lane.raw) + base;
                                for (std::int64_t j = 0; j < tn; ++j)
                                    dst[j * d] = static_cast<float>(col[j]);
                                break;
                            }
                            case ir::DType::I64: {
                                std::int64_t* dst = static_cast<std::int64_t*>(lane.raw) + base;
                                for (std::int64_t j = 0; j < tn; ++j)
                                    dst[j * d] = static_cast<std::int64_t>(col[j]);
                                break;
                            }
                            case ir::DType::I32: {
                                std::int32_t* dst = static_cast<std::int32_t*>(lane.raw) + base;
                                for (std::int64_t j = 0; j < tn; ++j)
                                    dst[j * d] = static_cast<std::int32_t>(
                                        static_cast<std::int64_t>(col[j]));
                                break;
                            }
                        }
                    }
                } else {  // VMSig::I64 — segment_ok excludes Tagged
                    std::int64_t* cols = s.seg_i64.data();
                    std::int64_t* regs = cols + nslots * tn;
                    std::fill_n(cols, static_cast<std::size_t>(nslots * tn), std::int64_t{0});
                    for (std::size_t i = 0; i < nin; ++i, ++a) {
                        const Scratch::KernelLane& lane = s.lanes[a];
                        if (lane.slot < 0) continue;
                        const std::int64_t d = s.lane_delta[a * nparams + inner];
                        const std::int64_t base = lane.offset + j0 * d;
                        std::int64_t* col = cols + static_cast<std::int64_t>(lane.slot) * tn;
                        if (lane.dt == ir::DType::I64) {
                            const std::int64_t* src =
                                static_cast<const std::int64_t*>(lane.raw) + base;
                            for (std::int64_t j = 0; j < tn; ++j) col[j] = src[j * d];
                        } else {
                            const std::int32_t* src =
                                static_cast<const std::int32_t*>(lane.raw) + base;
                            for (std::int64_t j = 0; j < tn; ++j)
                                col[j] = static_cast<std::int64_t>(src[j * d]);
                        }
                    }
                    tp.prog->execute_i64_batch(cols, regs, tn);
                    for (std::size_t i = 0; i < nout; ++i, ++a) {
                        const Scratch::KernelLane& lane = s.lanes[a];
                        const std::int64_t d = s.lane_delta[a * nparams + inner];
                        const std::int64_t base = lane.offset + j0 * d;
                        const std::int64_t* col =
                            cols + static_cast<std::int64_t>(lane.slot) * tn;
                        switch (lane.dt) {
                            case ir::DType::F64: {
                                double* dst = static_cast<double*>(lane.raw) + base;
                                for (std::int64_t j = 0; j < tn; ++j)
                                    dst[j * d] = static_cast<double>(col[j]);
                                break;
                            }
                            case ir::DType::F32: {
                                // Via double: mirrors Buffer::store's
                                // as_double() double-rounding.
                                float* dst = static_cast<float*>(lane.raw) + base;
                                for (std::int64_t j = 0; j < tn; ++j)
                                    dst[j * d] =
                                        static_cast<float>(static_cast<double>(col[j]));
                                break;
                            }
                            case ir::DType::I64: {
                                std::int64_t* dst = static_cast<std::int64_t*>(lane.raw) + base;
                                for (std::int64_t j = 0; j < tn; ++j) dst[j * d] = col[j];
                                break;
                            }
                            case ir::DType::I32: {
                                std::int32_t* dst = static_cast<std::int32_t*>(lane.raw) + base;
                                for (std::int64_t j = 0; j < tn; ++j)
                                    dst[j * d] = static_cast<std::int32_t>(col[j]);
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Outer odometer (levels [0, inner)); a level-k advance moves every
        // lane from this segment's start to the next segment's start: the
        // per-point delta for level k (which folds the resets of all deeper
        // levels, including the untraveled inner one) plus the inner
        // traversal the per-point path would have performed.
        if (inner == 0) return;
        std::size_t k = inner - 1;
        for (;;) {
            if (++s.kiter[k] < s.kcount[k]) break;
            s.kiter[k] = 0;
            if (k == 0) return;
            --k;
        }
        for (std::size_t l = 0; l < nlanes; ++l)
            s.lanes[l].offset += s.lane_delta[l * nparams + k] +
                                 s.lane_delta[l * nparams + inner] * (seg_len - 1);
    }
}

Buffer& Interpreter::ensure_buffer(const ir::SDFG& sdfg, Context& ctx, const std::string& name) {
    auto it = ctx.buffers.find(name);
    if (it != ctx.buffers.end()) return it->second;

    const ir::DataDesc& desc = sdfg.container(name);
    std::vector<std::int64_t> shape;
    if (scratch_.active_params.empty()) {
        shape = desc.concrete_shape(ctx.symbols);
    } else {
        // Allocating inside a map scope: the legacy engine resolved shapes
        // with the scope parameters bound (they were written into
        // ctx.symbols per iteration).  Interned scopes keep parameters in
        // the flat bindings only, so overlay the active parameters —
        // innermost last, shadowing any same-named outer symbol — to
        // preserve those semantics.  Cold path: runs once per container
        // per trial.
        sym::Bindings merged = ctx.symbols;
        for (const auto& ap : scratch_.active_params) merged[*ap.name] = ap.value;
        shape = desc.concrete_shape(merged);
    }
    // Allocation budget, charged before construction: a rejected allocation
    // leaves the context untouched, so a kernel-setup fallback replays this
    // exact check at the exact generic program point without double-charging
    // (buffers that did allocate early-return above).  Degenerate shapes
    // skip the check and fault in the Buffer constructor as before.
    if (std::all_of(shape.begin(), shape.end(), [](std::int64_t d) { return d >= 0; })) {
        __int128 bytes = static_cast<__int128>(ir::dtype_size(desc.dtype));
        for (std::int64_t d : shape) bytes *= d;
        if (config_.max_alloc_bytes > 0 &&
            static_cast<__int128>(alloc_used_) + bytes > config_.max_alloc_bytes)
            throw common::ResourceError::alloc(config_.max_alloc_bytes);
        alloc_used_ = saturating_add(alloc_used_, bytes);
    }
    Buffer buf(desc.dtype, std::move(shape));
    if (desc.storage == ir::Storage::Device) {
        // Deterministic garbage, stable per container name.
        std::uint64_t h = config_.device_garbage_seed;
        for (char c : name) h = common::splitmix64(h ^ static_cast<std::uint64_t>(c));
        buf.fill_garbage(h);
    }
    // Host buffers are zero-initialized by construction.
    auto [pos, inserted] = ctx.buffers.emplace(name, std::move(buf));
    (void)inserted;
    return pos->second;
}

std::vector<Value> Interpreter::gather(const ir::SDFG& sdfg, Context& ctx,
                                       const ir::Memlet& memlet) {
    std::vector<Value> out;
    gather_into(sdfg, ctx, memlet, out);
    return out;
}

const std::vector<ir::ConcreteRange>& Interpreter::concretize_into(const ir::Subset& subset,
                                                                   const Context& ctx) {
    auto& cr = scratch_.ranges;
    cr.resize(subset.ranges.size());
    for (std::size_t d = 0; d < subset.ranges.size(); ++d)
        cr[d] = ir::ConcreteRange{subset.ranges[d].begin->evaluate(ctx.symbols),
                                  subset.ranges[d].end->evaluate(ctx.symbols),
                                  subset.ranges[d].step->evaluate(ctx.symbols)};
    return cr;
}

const std::vector<ir::ConcreteRange>& Interpreter::concretize_plan(const AccessPlan& ap) {
    Scratch& s = scratch_;
    auto& cr = s.ranges;
    cr.resize(ap.dims.size());
    for (std::size_t d = 0; d < ap.dims.size(); ++d)
        cr[d] = ir::ConcreteRange{ap.dims[d].begin.eval(s.flat, s.eval_stack),
                                  ap.dims[d].end.eval(s.flat, s.eval_stack),
                                  ap.dims[d].step.eval(s.flat, s.eval_stack)};
    return cr;
}

void Interpreter::gather_into(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet,
                              std::vector<Value>& out) {
    Buffer& buf = ensure_buffer(sdfg, ctx, memlet.data);
    out.clear();
    const auto& cr = concretize_into(memlet.subset, ctx);
    for_each_point_into(cr, scratch_.idx, [&](const std::vector<std::int64_t>& idx) {
        out.push_back(buf.load(buf.flat_index(idx, memlet.data)));
    });
}

void Interpreter::scatter(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet,
                          const std::vector<Value>& values) {
    scatter_values(sdfg, ctx, memlet, values.data(), values.size());
}

void Interpreter::scatter_values(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet,
                                 const Value* values, std::size_t count) {
    Buffer& buf = ensure_buffer(sdfg, ctx, memlet.data);
    const auto& cr = concretize_into(memlet.subset, ctx);
    std::size_t lane = 0;
    for_each_point_into(cr, scratch_.idx, [&](const std::vector<std::int64_t>& idx) {
        if (lane >= count)
            throw common::Error("scatter on '" + memlet.data + "': not enough values (" +
                                std::to_string(count) + ")");
        buf.store(buf.flat_index(idx, memlet.data), values[lane++]);
    });
}

std::vector<Value>& Interpreter::scratch_values(std::size_t which) {
    if (value_pool_.size() <= which) value_pool_.resize(which + 1);
    return value_pool_[which];
}

TaskletProgramPtr Interpreter::program_for(const std::string& code) {
    return plans_->program_for(code);
}

// --- Tasklet execution: reference path --------------------------------------

void Interpreter::execute_tasklet(const ir::SDFG& sdfg, const ir::State& state, NodeId nid,
                                  Context& ctx) {
    instructions_used_ = saturating_add(instructions_used_, 1);
    const DataflowNode& node = state.graph().node(nid);
    TaskletProgramPtr prog = program_for(node.code);

    ConnectorEnv env;
    for (graph::EdgeId eid : state.graph().in_edges(nid)) {
        const auto& edge = state.graph().edge(eid).data;
        if (edge.dst_conn.empty()) continue;  // ordering-only dependency edge
        env[edge.dst_conn] = gather(sdfg, ctx, edge.memlet);
    }
    prog->execute(env);
    for (graph::EdgeId eid : state.graph().out_edges(nid)) {
        const auto& edge = state.graph().edge(eid).data;
        auto it = env.find(edge.src_conn);
        if (it == env.end())
            throw common::Error("tasklet '" + node.label + "' did not produce connector '" +
                                edge.src_conn + "'");
        scatter(sdfg, ctx, edge.memlet, it->second);
    }
}

// --- Tasklet execution: compiled path ---------------------------------------

Buffer& Interpreter::plan_buffer(const ir::SDFG& sdfg, Context& ctx, const StatePlan& plan,
                                 const AccessPlan& ap) {
    (void)plan;
    Buffer*& cached = scratch_.buffer_cache[static_cast<std::size_t>(ap.cache_index)];
    if (!cached) cached = &ensure_buffer(sdfg, ctx, ap.memlet->data);
    return *cached;
}

std::int64_t Interpreter::plan_gather(const ir::SDFG& sdfg, Context& ctx, const StatePlan& plan,
                                      const AccessPlan& ap, Value* slots) {
    Buffer& buf = plan_buffer(sdfg, ctx, plan, ap);
    Scratch& s = scratch_;
    auto& idx = s.idx;
    if (ap.passthrough_pool >= 0) {
        // Snapshot the full subset before the program runs; forwarding
        // outputs scatter from this pool.
        auto& tmp =
            scratch_values(kPassthroughBase + static_cast<std::size_t>(ap.passthrough_pool));
        tmp.clear();
        const auto& cr = concretize_plan(ap);
        for_each_point_into(cr, idx, [&](const std::vector<std::int64_t>& ix) {
            tmp.push_back(buf.load(buf.flat_index(ix, ap.memlet->data)));
        });
        return static_cast<std::int64_t>(tmp.size());
    }
    if (ap.single_point) {
        // Hot path: a scalar element — evaluate each index program against
        // the flat bindings and load straight into the connector slot.
        idx.resize(ap.dims.size());
        for (std::size_t d = 0; d < ap.dims.size(); ++d)
            idx[d] = ap.dims[d].begin.eval(s.flat, s.eval_stack);
        const std::int64_t flat = buf.flat_index(idx, ap.memlet->data);
        if (ap.slot_base >= 0) slots[ap.slot_base] = buf.load(flat);
        return 1;
    }
    const auto& cr = concretize_plan(ap);
    std::int64_t lane = 0;
    for_each_point_into(cr, idx, [&](const std::vector<std::int64_t>& ix) {
        const std::int64_t flat = buf.flat_index(ix, ap.memlet->data);
        if (ap.slot_base >= 0 && lane < ap.width) slots[ap.slot_base + lane] = buf.load(flat);
        ++lane;
    });
    return lane;
}

void Interpreter::plan_scatter(const ir::SDFG& sdfg, Context& ctx, const StatePlan& plan,
                               const TaskletPlan& tp, const AccessPlan& ap, const Value* slots) {
    if (ap.invalid)
        throw common::Error("tasklet '" + tp.label + "' did not produce connector '" + ap.conn +
                            "'");
    Buffer& buf = plan_buffer(sdfg, ctx, plan, ap);
    Scratch& s = scratch_;
    auto& idx = s.idx;
    if (ap.passthrough_pool >= 0) {
        const auto& tmp =
            scratch_values(kPassthroughBase + static_cast<std::size_t>(ap.passthrough_pool));
        const auto& cr = concretize_plan(ap);
        std::size_t lane = 0;
        for_each_point_into(cr, idx, [&](const std::vector<std::int64_t>& ix) {
            if (lane >= tmp.size())
                throw common::Error("scatter on '" + ap.memlet->data + "': not enough values (" +
                                    std::to_string(tmp.size()) + ")");
            buf.store(buf.flat_index(ix, ap.memlet->data), tmp[lane++]);
        });
        return;
    }
    if (ap.single_point) {
        idx.resize(ap.dims.size());
        for (std::size_t d = 0; d < ap.dims.size(); ++d)
            idx[d] = ap.dims[d].begin.eval(s.flat, s.eval_stack);
        buf.store(buf.flat_index(idx, ap.memlet->data), slots[ap.slot_base]);
        return;
    }
    const auto& cr = concretize_plan(ap);
    std::int64_t lane = 0;
    for_each_point_into(cr, idx, [&](const std::vector<std::int64_t>& ix) {
        if (lane >= ap.width)
            throw common::Error("scatter on '" + ap.memlet->data + "': not enough values (" +
                                std::to_string(ap.width) + ")");
        buf.store(buf.flat_index(ix, ap.memlet->data), slots[ap.slot_base + lane]);
        ++lane;
    });
}

void Interpreter::execute_tasklet_planned(const ir::SDFG& sdfg, const ir::State& state,
                                          const StatePlan& plan, const TaskletPlan& tp,
                                          Context& ctx) {
    (void)state;
    // One dispatch regardless of which VM runs it (the untagged fallback
    // below re-runs on the tagged path without re-counting) — the cost
    // counters must be invariant across tiers.
    instructions_used_ = saturating_add(instructions_used_, 1);
    Scratch& s = scratch_;
    if (s.cache_plan != &plan || s.cache_ctx != &ctx) {
        s.buffer_cache.assign(static_cast<std::size_t>(plan.cache_slots), nullptr);
        s.cache_plan = &plan;
        s.cache_ctx = &ctx;
    }
    if (tp.sig != VMSig::Tagged && config_.specialize &&
        execute_tasklet_untagged(sdfg, plan, tp, ctx))
        return;

    const std::size_t nslots = static_cast<std::size_t>(tp.prog->slot_count());
    const std::size_t nregs = static_cast<std::size_t>(tp.prog->reg_count());
    if (s.slots.size() < nslots) s.slots.resize(nslots);
    std::fill_n(s.slots.begin(), nslots, Value{});
    if (s.regs.size() < nregs) s.regs.resize(nregs);

    // Gather every input first (lazy allocation and bounds checks fire in
    // edge order, like the reference path), then validate declared inputs
    // in the reference engine's order.
    s.input_counts.resize(tp.inputs.size());
    for (std::size_t i = 0; i < tp.inputs.size(); ++i)
        s.input_counts[i] = plan_gather(sdfg, ctx, plan, tp.inputs[i], s.slots.data());
    for (const TaskletPlan::InputCheck& check : tp.input_checks)
        if (check.input_index < 0 ||
            s.input_counts[static_cast<std::size_t>(check.input_index)] < check.width)
            throw common::Error("tasklet: missing input connector '" + check.conn + "'");

    tp.prog->execute_compiled(s.slots.data(), s.regs.data());

    for (const AccessPlan& ap : tp.outputs) plan_scatter(sdfg, ctx, plan, tp, ap, s.slots.data());
}

bool Interpreter::execute_tasklet_untagged(const ir::SDFG& sdfg, const StatePlan& plan,
                                           const TaskletPlan& tp, Context& ctx) {
    // Twin of execute_tasklet_planned for tp.sig != Tagged nodes outside
    // flat-stride kernels: every access is a single point (by
    // classification), so gathers and scatters move raw values between
    // bounds-checked flat indices and the untagged slot array, converting
    // per the buffer's runtime dtype (the exact Buffer::load/store
    // expressions — see the conversion helpers).  Evaluation order — inputs
    // in edge order, declared-input checks, program, outputs in edge order —
    // matches the tagged path instruction for instruction, including lazy
    // output-buffer allocation at each scatter (an earlier output's bounds
    // error must leave later outputs unallocated, exactly like the tagged
    // path).  A caller-provided *input* buffer whose runtime dtype drifted
    // outside the signature's family hands the node back to the tagged path
    // (return false, before any store); output buffers convert from the
    // untagged result whatever their dtype, so they can never force a
    // fallback.
    Scratch& s = scratch_;
    const bool is_f64 = tp.sig == VMSig::F64;
    const std::size_t nslots = static_cast<std::size_t>(tp.prog->slot_count());
    const std::size_t nregs = static_cast<std::size_t>(tp.prog->reg_count());
    if (is_f64) {
        if (s.f64_slots.size() < nslots) s.f64_slots.resize(nslots);
        std::fill_n(s.f64_slots.begin(), nslots, 0.0);
        if (s.f64_regs.size() < nregs) s.f64_regs.resize(nregs);
    } else {
        if (s.i64_slots.size() < nslots) s.i64_slots.resize(nslots);
        std::fill_n(s.i64_slots.begin(), nslots, std::int64_t{0});
        if (s.i64_regs.size() < nregs) s.i64_regs.resize(nregs);
    }

    auto& idx = s.idx;
    auto flat_of = [&](Buffer& buf, const AccessPlan& ap) {
        idx.resize(ap.dims.size());
        for (std::size_t d = 0; d < ap.dims.size(); ++d)
            idx[d] = ap.dims[d].begin.eval(s.flat, s.eval_stack);
        return buf.flat_index(idx, ap.memlet->data);
    };

    s.input_counts.resize(tp.inputs.size());
    for (std::size_t i = 0; i < tp.inputs.size(); ++i) {
        const AccessPlan& ap = tp.inputs[i];
        Buffer& buf = plan_buffer(sdfg, ctx, plan, ap);
        if (ir::dtype_is_float(buf.dtype()) != is_f64)
            return false;  // input dtype drift: tagged path handles it
        const void* data = raw_data_of(buf);
        const std::int64_t flat = flat_of(buf, ap);
        if (ap.slot_base >= 0) {
            const auto slot = static_cast<std::size_t>(ap.slot_base);
            if (is_f64) s.f64_slots[slot] = load_to_f64(data, buf.dtype(), flat);
            else s.i64_slots[slot] = load_to_i64(data, buf.dtype(), flat);
        }
        s.input_counts[i] = 1;
    }
    for (const TaskletPlan::InputCheck& check : tp.input_checks)
        if (check.input_index < 0 ||
            s.input_counts[static_cast<std::size_t>(check.input_index)] < check.width)
            throw common::Error("tasklet: missing input connector '" + check.conn + "'");

    if (is_f64) tp.prog->execute_f64(s.f64_slots.data(), s.f64_regs.data());
    else tp.prog->execute_i64(s.i64_slots.data(), s.i64_regs.data());

    for (const AccessPlan& ap : tp.outputs) {
        Buffer& buf = plan_buffer(sdfg, ctx, plan, ap);
        void* data = raw_data_of(buf);
        const std::int64_t flat = flat_of(buf, ap);
        const auto slot = static_cast<std::size_t>(ap.slot_base);
        if (is_f64) store_from_f64(data, buf.dtype(), flat, s.f64_slots[slot]);
        else store_from_i64(data, buf.dtype(), flat, s.i64_slots[slot]);
    }
    return true;
}

// --- Copies and collectives -------------------------------------------------

void Interpreter::execute_access_copies(const ir::SDFG& sdfg, const ir::State& state, NodeId nid,
                                        Context& ctx) {
    // An edge between two access nodes is a copy.  The memlet subset is
    // interpreted in the *source* container's coordinates and written to the
    // same coordinates of the destination.
    const DataflowNode& node = state.graph().node(nid);
    for (graph::EdgeId eid : state.graph().out_edges(nid)) {
        const auto& e = state.graph().edge(eid);
        const DataflowNode& dst = state.graph().node(e.dst);
        if (dst.kind != NodeKind::Access) continue;
        const ir::Memlet& m = e.data.memlet;
        ir::Memlet src_memlet(node.data, m.subset);
        ir::Memlet dst_memlet(dst.data, m.subset);
        auto& tmp = scratch_values(kCopyScratch);
        gather_into(sdfg, ctx, src_memlet, tmp);
        scatter_values(sdfg, ctx, dst_memlet, tmp.data(), tmp.size());
    }
}

void Interpreter::execute_comm_single_rank(const ir::SDFG& sdfg, const ir::State& state,
                                           NodeId nid, Context& ctx) {
    // With a single rank every collective degenerates to an identity copy
    // (sum over one rank, gather of one chunk, broadcast from self).
    const auto& g = state.graph();
    const ir::Memlet* in_memlet = nullptr;
    const ir::Memlet* out_memlet = nullptr;
    for (graph::EdgeId eid : g.in_edges(nid))
        if (g.edge(eid).data.dst_conn == "in") in_memlet = &g.edge(eid).data.memlet;
    for (graph::EdgeId eid : g.out_edges(nid))
        if (g.edge(eid).data.src_conn == "out") out_memlet = &g.edge(eid).data.memlet;
    if (!in_memlet || !out_memlet)
        throw common::ValidationError("comm node missing in/out connector");
    auto& tmp = scratch_values(kCopyScratch);
    gather_into(sdfg, ctx, *in_memlet, tmp);
    scatter_values(sdfg, ctx, *out_memlet, tmp.data(), tmp.size());
}

}  // namespace ff::interp
