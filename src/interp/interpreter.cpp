#include "interp/interpreter.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "interp/library_nodes.h"

namespace ff::interp {

using ir::DataflowNode;
using ir::NodeId;
using ir::NodeKind;

namespace {

/// Precomputed execution structure of one state: topological order, scope
/// parenthood, and ordered direct children per scope.  Built once per state
/// and cached by the interpreter — nested map scopes execute O(iterations)
/// times and must not re-derive graph structure each time.
struct StatePlan {
    std::vector<NodeId> top_level;                       // ordered, no MapExit
    std::map<NodeId, std::vector<NodeId>> scope_children;  // entry -> ordered children
};

StatePlan build_plan(const ir::State& state) {
    const auto topo = state.graph().topological_order();
    if (!topo) throw common::ValidationError("state '" + state.name() + "' has a dataflow cycle");

    // parent[n] = innermost enclosing MapEntry (kInvalidNode at top level).
    std::map<NodeId, NodeId> parent;
    for (NodeId n : *topo) parent[n] = graph::kInvalidNode;
    struct ScopeInfo {
        NodeId entry;
        std::set<NodeId> inside;
    };
    std::vector<ScopeInfo> scopes;
    for (NodeId n : *topo) {
        if (state.graph().node(n).kind == NodeKind::MapEntry)
            scopes.push_back(ScopeInfo{n, state.scope_nodes(n)});
    }
    for (NodeId n : *topo) {
        NodeId best = graph::kInvalidNode;
        std::size_t best_size = 0;
        for (const ScopeInfo& s : scopes) {
            if (!s.inside.count(n)) continue;
            if (best == graph::kInvalidNode || s.inside.size() < best_size) {
                best = s.entry;
                best_size = s.inside.size();
            }
        }
        parent[n] = best;
    }

    StatePlan plan;
    for (NodeId n : *topo) {
        const NodeKind k = state.graph().node(n).kind;
        if (k == NodeKind::MapExit) continue;  // executed with its entry
        const NodeId p = parent[n];
        if (p == graph::kInvalidNode) plan.top_level.push_back(n);
        else plan.scope_children[p].push_back(n);
    }
    return plan;
}

}  // namespace

const void* Interpreter::plan_for(const ir::State& state) {
    auto it = plan_cache_.find(&state);
    if (it == plan_cache_.end())
        it = plan_cache_.emplace(&state, std::make_shared<StatePlan>(build_plan(state))).first;
    return it->second.get();
}

ExecResult Interpreter::run(const ir::SDFG& sdfg, Context& ctx) {
    ExecResult result;
    try {
        ir::StateId current = sdfg.start_state();
        while (true) {
            execute_state(sdfg, sdfg.state(current), ctx);

            // Pick the first matching transition, in edge insertion order.
            ir::StateId next = graph::kInvalidNode;
            const ir::InterstateEdge* taken = nullptr;
            for (graph::EdgeId eid : sdfg.cfg().out_edges(current)) {
                const auto& e = sdfg.cfg().edge(eid);
                if (!e.data.condition || e.data.condition->evaluate(ctx.symbols)) {
                    next = e.dst;
                    taken = &e.data;
                    break;
                }
            }
            if (next == graph::kInvalidNode) break;  // terminate

            // Simultaneous assignment: evaluate all RHS under old bindings.
            std::vector<std::pair<std::string, std::int64_t>> updates;
            updates.reserve(taken->assignments.size());
            for (const auto& [symbol, expr] : taken->assignments)
                updates.emplace_back(symbol, expr->evaluate(ctx.symbols));
            for (const auto& [symbol, value] : updates) ctx.symbols[symbol] = value;

            if (++result.state_transitions > config_.max_state_transitions)
                throw common::HangError(config_.max_state_transitions);

            current = next;
        }
    } catch (const common::HangError& e) {
        result.status = ExecStatus::Hang;
        result.message = e.what();
    } catch (const std::exception& e) {
        result.status = ExecStatus::Crash;
        result.message = e.what();
    }
    return result;
}

void Interpreter::execute_state(const ir::SDFG& sdfg, const ir::State& state, Context& ctx) {
    const StatePlan& plan = *static_cast<const StatePlan*>(plan_for(state));

    for (NodeId nid : plan.top_level) {
        const DataflowNode& node = state.graph().node(nid);
        if (node.kind == NodeKind::MapEntry) execute_scope(sdfg, state, nid, ctx);
        else execute_node(sdfg, state, nid, ctx);
    }
}

void Interpreter::execute_node(const ir::SDFG& sdfg, const ir::State& state, NodeId nid,
                               Context& ctx) {
    const DataflowNode& node = state.graph().node(nid);
    switch (node.kind) {
        case NodeKind::Access:
            ensure_buffer(sdfg, ctx, node.data);
            execute_access_copies(sdfg, state, nid, ctx);
            break;
        case NodeKind::Tasklet: execute_tasklet(sdfg, state, nid, ctx); break;
        case NodeKind::Library: execute_library(*this, sdfg, state, nid, ctx); break;
        case NodeKind::Comm: execute_comm_single_rank(sdfg, state, nid, ctx); break;
        case NodeKind::MapEntry: execute_scope(sdfg, state, nid, ctx); break;
        case NodeKind::MapExit: break;
    }
}

void Interpreter::execute_scope(const ir::SDFG& sdfg, const ir::State& state, NodeId entry,
                                Context& ctx) {
    const DataflowNode& map_node = state.graph().node(entry);
    const StatePlan& plan = *static_cast<const StatePlan*>(plan_for(state));

    static const std::vector<NodeId> kEmpty;
    auto cit = plan.scope_children.find(entry);
    const std::vector<NodeId>& children = cit == plan.scope_children.end() ? kEmpty : cit->second;

    // Save shadowed bindings.
    std::vector<std::pair<std::string, std::optional<std::int64_t>>> saved;
    saved.reserve(map_node.params.size());
    for (const auto& p : map_node.params) {
        auto sit = ctx.symbols.find(p);
        saved.emplace_back(p, sit == ctx.symbols.end() ? std::nullopt
                                                       : std::optional<std::int64_t>(sit->second));
    }

    // Iterate the cartesian product of ranges.  Bounds are evaluated per
    // level because they may reference parameters of enclosing scopes.
    const std::size_t nparams = map_node.params.size();
    auto iterate = [&](auto&& self, std::size_t level) -> void {
        if (level == nparams) {
            for (NodeId child : children) {
                const DataflowNode& cn = state.graph().node(child);
                if (cn.kind == NodeKind::MapEntry) execute_scope(sdfg, state, child, ctx);
                else execute_node(sdfg, state, child, ctx);
            }
            return;
        }
        const ir::Range& r = map_node.map_ranges[level];
        const std::int64_t begin = r.begin->evaluate(ctx.symbols);
        const std::int64_t end = r.end->evaluate(ctx.symbols);
        const std::int64_t step = r.step->evaluate(ctx.symbols);
        if (step == 0) throw common::Error("map '" + map_node.label + "' has step 0");
        if (step > 0) {
            for (std::int64_t v = begin; v <= end; v += step) {
                ctx.symbols[map_node.params[level]] = v;
                self(self, level + 1);
            }
        } else {
            for (std::int64_t v = begin; v >= end; v += step) {
                ctx.symbols[map_node.params[level]] = v;
                self(self, level + 1);
            }
        }
    };
    iterate(iterate, 0);

    // Restore bindings.
    for (const auto& [p, old] : saved) {
        if (old) ctx.symbols[p] = *old;
        else ctx.symbols.erase(p);
    }
}

Buffer& Interpreter::ensure_buffer(const ir::SDFG& sdfg, Context& ctx, const std::string& name) {
    auto it = ctx.buffers.find(name);
    if (it != ctx.buffers.end()) return it->second;

    const ir::DataDesc& desc = sdfg.container(name);
    Buffer buf(desc.dtype, desc.concrete_shape(ctx.symbols));
    if (desc.storage == ir::Storage::Device) {
        // Deterministic garbage, stable per container name.
        std::uint64_t h = config_.device_garbage_seed;
        for (char c : name) h = common::splitmix64(h ^ static_cast<std::uint64_t>(c));
        buf.fill_garbage(h);
    }
    // Host buffers are zero-initialized by construction.
    auto [pos, inserted] = ctx.buffers.emplace(name, std::move(buf));
    (void)inserted;
    return pos->second;
}

std::vector<Value> Interpreter::gather(const ir::SDFG& sdfg, Context& ctx,
                                       const ir::Memlet& memlet) {
    Buffer& buf = ensure_buffer(sdfg, ctx, memlet.data);
    const auto ranges = memlet.subset.concretize(ctx.symbols);
    std::vector<Value> out;
    for_each_point(ranges, [&](const std::vector<std::int64_t>& idx) {
        out.push_back(buf.load(buf.flat_index(idx, memlet.data)));
    });
    return out;
}

void Interpreter::scatter(const ir::SDFG& sdfg, Context& ctx, const ir::Memlet& memlet,
                          const std::vector<Value>& values) {
    Buffer& buf = ensure_buffer(sdfg, ctx, memlet.data);
    const auto ranges = memlet.subset.concretize(ctx.symbols);
    std::size_t lane = 0;
    for_each_point(ranges, [&](const std::vector<std::int64_t>& idx) {
        if (lane >= values.size())
            throw common::Error("scatter on '" + memlet.data + "': not enough values (" +
                                std::to_string(values.size()) + ")");
        buf.store(buf.flat_index(idx, memlet.data), values[lane++]);
    });
}

TaskletProgramPtr Interpreter::program_for(const std::string& code) {
    auto it = tasklet_cache_.find(code);
    if (it != tasklet_cache_.end()) return it->second;
    TaskletProgramPtr prog = TaskletProgram::parse(code);
    tasklet_cache_.emplace(code, prog);
    return prog;
}

void Interpreter::execute_tasklet(const ir::SDFG& sdfg, const ir::State& state, NodeId nid,
                                  Context& ctx) {
    const DataflowNode& node = state.graph().node(nid);
    TaskletProgramPtr prog = program_for(node.code);

    ConnectorEnv env;
    for (graph::EdgeId eid : state.graph().in_edges(nid)) {
        const auto& edge = state.graph().edge(eid).data;
        if (edge.dst_conn.empty()) continue;  // ordering-only dependency edge
        env[edge.dst_conn] = gather(sdfg, ctx, edge.memlet);
    }
    prog->execute(env);
    for (graph::EdgeId eid : state.graph().out_edges(nid)) {
        const auto& edge = state.graph().edge(eid).data;
        auto it = env.find(edge.src_conn);
        if (it == env.end())
            throw common::Error("tasklet '" + node.label + "' did not produce connector '" +
                                edge.src_conn + "'");
        scatter(sdfg, ctx, edge.memlet, it->second);
    }
}

void Interpreter::execute_access_copies(const ir::SDFG& sdfg, const ir::State& state, NodeId nid,
                                        Context& ctx) {
    // An edge between two access nodes is a copy.  The memlet subset is
    // interpreted in the *source* container's coordinates and written to the
    // same coordinates of the destination.
    const DataflowNode& node = state.graph().node(nid);
    for (graph::EdgeId eid : state.graph().out_edges(nid)) {
        const auto& e = state.graph().edge(eid);
        const DataflowNode& dst = state.graph().node(e.dst);
        if (dst.kind != NodeKind::Access) continue;
        const ir::Memlet& m = e.data.memlet;
        ir::Memlet src_memlet(node.data, m.subset);
        ir::Memlet dst_memlet(dst.data, m.subset);
        scatter(sdfg, ctx, dst_memlet, gather(sdfg, ctx, src_memlet));
    }
}

void Interpreter::execute_comm_single_rank(const ir::SDFG& sdfg, const ir::State& state,
                                           NodeId nid, Context& ctx) {
    // With a single rank every collective degenerates to an identity copy
    // (sum over one rank, gather of one chunk, broadcast from self).
    const auto& g = state.graph();
    const ir::Memlet* in_memlet = nullptr;
    const ir::Memlet* out_memlet = nullptr;
    for (graph::EdgeId eid : g.in_edges(nid))
        if (g.edge(eid).data.dst_conn == "in") in_memlet = &g.edge(eid).data.memlet;
    for (graph::EdgeId eid : g.out_edges(nid))
        if (g.edge(eid).data.src_conn == "out") out_memlet = &g.edge(eid).data.memlet;
    if (!in_memlet || !out_memlet)
        throw common::ValidationError("comm node missing in/out connector");
    scatter(sdfg, ctx, *out_memlet, gather(sdfg, ctx, *in_memlet));
}

}  // namespace ff::interp
