#include "core/testcase_io.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "core/report.h"
#include "feedback/coverage.h"
#include "ir/serialize.h"

namespace ff::core {

using common::Json;

namespace {

const char* trial_kind_name(TrialRecord::Kind kind) {
    switch (kind) {
        case TrialRecord::Kind::NotRun: return "not-run";
        case TrialRecord::Kind::Uninteresting: return "uninteresting";
        case TrialRecord::Kind::Pass: return "pass";
        case TrialRecord::Kind::Failed: return "failed";
    }
    return "not-run";
}

TrialRecord::Kind trial_kind_from_name(const std::string& name) {
    if (name == "not-run") return TrialRecord::Kind::NotRun;
    if (name == "uninteresting") return TrialRecord::Kind::Uninteresting;
    if (name == "pass") return TrialRecord::Kind::Pass;
    if (name == "failed") return TrialRecord::Kind::Failed;
    throw common::Error("unknown trial record kind: " + name);
}

}  // namespace

Json buffer_to_json(const interp::Buffer& buffer) {
    Json j = Json::object();
    j["dtype"] = ir::dtype_name(buffer.dtype());
    Json shape = Json::array();
    for (std::int64_t d : buffer.shape()) shape.push_back(Json(d));
    j["shape"] = std::move(shape);
    Json data = Json::array();
    const bool is_float = ir::dtype_is_float(buffer.dtype());
    for (std::int64_t i = 0; i < buffer.size(); ++i) {
        const interp::Value v = buffer.load(i);
        if (is_float) data.push_back(Json(v.as_double()));
        else data.push_back(Json(v.as_int()));
    }
    j["data"] = std::move(data);
    return j;
}

interp::Buffer buffer_from_json(const Json& j) {
    std::vector<std::int64_t> shape;
    for (const auto& d : j.at("shape").as_array()) shape.push_back(d.as_int());
    interp::Buffer buf(ir::dtype_from_name(j.at("dtype").as_string()), std::move(shape));
    const auto& data = j.at("data").as_array();
    const bool is_float = ir::dtype_is_float(buf.dtype());
    for (std::int64_t i = 0; i < buf.size(); ++i) {
        const auto& v = data.at(static_cast<std::size_t>(i));
        buf.store(i, is_float ? interp::Value::from_double(v.as_double())
                              : interp::Value::from_int(v.as_int()));
    }
    return buf;
}

Json context_to_json(const interp::Context& ctx) {
    Json j = Json::object();
    Json symbols = Json::object();
    for (const auto& [name, value] : ctx.symbols) symbols[name] = Json(value);
    j["symbols"] = std::move(symbols);
    Json buffers = Json::object();
    for (const auto& [name, buffer] : ctx.buffers) buffers[name] = buffer_to_json(buffer);
    j["buffers"] = std::move(buffers);
    return j;
}

interp::Context context_from_json(const Json& j) {
    interp::Context ctx;
    for (const auto& [name, value] : j.at("symbols").as_object())
        ctx.symbols[name] = value.as_int();
    for (const auto& [name, buffer] : j.at("buffers").as_object())
        ctx.buffers.emplace(name, buffer_from_json(buffer));
    return ctx;
}

Json trial_record_to_json(const TrialRecord& record) {
    Json j = Json::object();
    j["kind"] = trial_kind_name(record.kind);
    if (record.kind != TrialRecord::Kind::NotRun) {
        // Per-side cost counters [original points, original instructions,
        // transformed points, transformed instructions] — deterministic per
        // unit, so they participate in the byte-identity contract.
        Json cost = Json::array();
        cost.push_back(Json(record.original_points));
        cost.push_back(Json(record.original_instructions));
        cost.push_back(Json(record.transformed_points));
        cost.push_back(Json(record.transformed_instructions));
        j["cost"] = std::move(cost);
        // Conditional field: coverage-off records keep their exact
        // historical bytes (like "cost" vs pre-cost records).
        if (!record.coverage.empty())
            j["cov"] = feedback::cov_words_to_hex(record.coverage);
    }
    if (record.kind == TrialRecord::Kind::Failed) {
        j["verdict"] = verdict_name(record.verdict);
        j["detail"] = record.detail;
        if (record.inputs) j["inputs"] = context_to_json(*record.inputs);
    }
    return j;
}

TrialRecord trial_record_from_json(const Json& j) {
    TrialRecord record;
    record.kind = trial_kind_from_name(j.at("kind").as_string());
    if (record.kind != TrialRecord::Kind::NotRun) {
        const auto& cost = j.at("cost").as_array();
        if (cost.size() != 4)
            throw common::Error("trial record cost must have 4 entries, got " +
                                std::to_string(cost.size()));
        record.original_points = cost[0].as_int();
        record.original_instructions = cost[1].as_int();
        record.transformed_points = cost[2].as_int();
        record.transformed_instructions = cost[3].as_int();
        if (j.contains("cov"))
            record.coverage = feedback::cov_words_from_hex(j.at("cov").as_string());
    }
    if (record.kind == TrialRecord::Kind::Failed) {
        record.verdict = verdict_from_name(j.at("verdict").as_string());
        record.detail = j.at("detail").as_string();
        // Failing records must carry their inputs: the merge-time artifact
        // save dereferences them, so a record without them is malformed
        // wire data, rejected here rather than crashing the merger.
        record.inputs = std::make_unique<interp::Context>(context_from_json(j.at("inputs")));
    }
    return record;
}

Json fuzz_report_to_json(const FuzzReport& report) {
    Json j = Json::object();
    j["transformation"] = report.transformation;
    j["match_description"] = report.match_description;
    j["verdict"] = verdict_name(report.verdict);
    j["trials"] = report.trials;
    j["uninteresting"] = report.uninteresting;
    j["original_points"] = report.original_points;
    j["original_instructions"] = report.original_instructions;
    j["transformed_points"] = report.transformed_points;
    j["transformed_instructions"] = report.transformed_instructions;
    j["threads"] = report.threads;
    j["seconds"] = report.seconds;
    j["trials_per_second"] = report.trials_per_second;
    j["detail"] = report.detail;
    j["artifact_path"] = report.artifact_path;
    j["artifact_error"] = report.artifact_error;
    j["cutout_nodes"] = report.cutout_nodes;
    j["program_nodes"] = report.program_nodes;
    j["input_volume"] = report.input_volume;
    j["input_volume_before_mincut"] = report.input_volume_before_mincut;
    j["mincut_improved"] = report.mincut_improved;
    j["whole_program_cutout"] = report.whole_program_cutout;
    // Conditional coverage counters (docs/ARCHITECTURE.md clause 10):
    // coverage-off reports keep their exact historical bytes.
    if (report.pairs_total != 0 || report.pairs_hit != 0 || report.corpus_size != 0) {
        j["pairs_total"] = report.pairs_total;
        j["pairs_hit"] = report.pairs_hit;
        j["corpus_size"] = report.corpus_size;
    }
    return j;
}

FuzzReport fuzz_report_from_json(const Json& j) {
    FuzzReport report;
    report.transformation = j.at("transformation").as_string();
    report.match_description = j.at("match_description").as_string();
    report.verdict = verdict_from_name(j.at("verdict").as_string());
    report.trials = static_cast<int>(j.at("trials").as_int());
    report.uninteresting = static_cast<int>(j.at("uninteresting").as_int());
    report.original_points = j.at("original_points").as_int();
    report.original_instructions = j.at("original_instructions").as_int();
    report.transformed_points = j.at("transformed_points").as_int();
    report.transformed_instructions = j.at("transformed_instructions").as_int();
    report.threads = static_cast<int>(j.at("threads").as_int());
    report.seconds = j.at("seconds").as_double();
    report.trials_per_second = j.at("trials_per_second").as_double();
    report.detail = j.at("detail").as_string();
    report.artifact_path = j.at("artifact_path").as_string();
    report.artifact_error = j.at("artifact_error").as_string();
    report.cutout_nodes = static_cast<std::size_t>(j.at("cutout_nodes").as_int());
    report.program_nodes = static_cast<std::size_t>(j.at("program_nodes").as_int());
    report.input_volume = j.at("input_volume").as_int();
    report.input_volume_before_mincut = j.at("input_volume_before_mincut").as_int();
    report.mincut_improved = j.at("mincut_improved").as_bool();
    report.whole_program_cutout = j.at("whole_program_cutout").as_bool();
    if (j.contains("pairs_total")) {
        report.pairs_total = j.at("pairs_total").as_int();
        report.pairs_hit = j.at("pairs_hit").as_int();
        report.corpus_size = j.at("corpus_size").as_int();
    }
    return report;
}

Json testcase_to_json(const Cutout& cutout, const ir::SDFG& transformed,
                      const interp::Context& inputs, const std::string& transformation,
                      const std::string& verdict, const std::string& detail) {
    Json j = Json::object();
    j["transformation"] = transformation;
    j["verdict"] = verdict;
    j["detail"] = detail;
    j["original"] = ir::to_json(cutout.program);
    j["transformed"] = ir::to_json(transformed);
    Json system_state = Json::array();
    for (const auto& name : cutout.system_state) system_state.push_back(Json(name));
    j["system_state"] = std::move(system_state);
    j["inputs"] = context_to_json(inputs);
    return j;
}

LoadedTestCase testcase_from_json(const Json& j) {
    LoadedTestCase tc;
    tc.original = ir::sdfg_from_json(j.at("original"));
    tc.transformed = ir::sdfg_from_json(j.at("transformed"));
    tc.inputs = context_from_json(j.at("inputs"));
    for (const auto& name : j.at("system_state").as_array())
        tc.system_state.insert(name.as_string());
    tc.transformation = j.at("transformation").as_string();
    tc.verdict = j.at("verdict").as_string();
    tc.detail = j.at("detail").as_string();
    return tc;
}

LoadedTestCase load_testcase_file(const std::string& path) {
    return testcase_from_json(Json::parse_file(path));
}

ReplayResult replay_testcase(const LoadedTestCase& tc, DiffConfig config) {
    DifferentialTester tester(tc.original, tc.transformed, tc.system_state, std::move(config));
    ReplayResult result;
    result.outcome = tester.run_trial(tc.inputs);
    result.reproduced = verdict_name(result.outcome.verdict) == tc.verdict;
    return result;
}

std::string save_testcase_artifact(const std::string& dir, const Cutout& cutout,
                                   const ir::SDFG& transformed, const interp::Context& inputs,
                                   const FuzzReport& report, std::string* error) {
    const Json j = testcase_to_json(cutout, transformed, inputs, report.transformation,
                                    verdict_name(report.verdict), report.detail);
    const std::string text = j.dump(2);
    // Content-derived name keeps repeated runs deterministic.
    std::uint64_t h = 0x4242;
    for (char c : text) h = common::splitmix64(h ^ static_cast<std::uint64_t>(c));
    char name[64];
    std::snprintf(name, sizeof(name), "testcase_%016llx.json",
                  static_cast<unsigned long long>(h));
    const std::string path = dir + "/" + name;
    // Publish atomically: write under a per-process temp name, then rename.
    // The artifact name is content-derived, so two processes saving the same
    // finding write identical bytes — a racing reader must only ever see a
    // complete file, never a torn in-progress write.
    const std::string tmp = path + ".tmp." + std::to_string(::getpid());
    std::ofstream out(tmp);
    if (!out) {
        if (error) *error = "cannot open " + tmp + ": " + std::strerror(errno);
        return "";
    }
    out << text;
    out.close();
    if (out.fail()) {
        if (error) *error = "short write to " + tmp + ": " + std::strerror(errno);
        std::remove(tmp.c_str());  // never leave a truncated reproducer behind
        return "";
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error) *error = "cannot publish " + path + ": " + std::strerror(errno);
        std::remove(tmp.c_str());
        return "";
    }
    return path;
}

}  // namespace ff::core
