#include "core/testcase_io.h"

#include <fstream>

#include "common/rng.h"
#include "core/fuzzer.h"
#include "ir/serialize.h"

namespace ff::core {

using common::Json;

Json buffer_to_json(const interp::Buffer& buffer) {
    Json j = Json::object();
    j["dtype"] = ir::dtype_name(buffer.dtype());
    Json shape = Json::array();
    for (std::int64_t d : buffer.shape()) shape.push_back(Json(d));
    j["shape"] = std::move(shape);
    Json data = Json::array();
    const bool is_float = ir::dtype_is_float(buffer.dtype());
    for (std::int64_t i = 0; i < buffer.size(); ++i) {
        const interp::Value v = buffer.load(i);
        if (is_float) data.push_back(Json(v.as_double()));
        else data.push_back(Json(v.as_int()));
    }
    j["data"] = std::move(data);
    return j;
}

interp::Buffer buffer_from_json(const Json& j) {
    std::vector<std::int64_t> shape;
    for (const auto& d : j.at("shape").as_array()) shape.push_back(d.as_int());
    interp::Buffer buf(ir::dtype_from_name(j.at("dtype").as_string()), std::move(shape));
    const auto& data = j.at("data").as_array();
    const bool is_float = ir::dtype_is_float(buf.dtype());
    for (std::int64_t i = 0; i < buf.size(); ++i) {
        const auto& v = data.at(static_cast<std::size_t>(i));
        buf.store(i, is_float ? interp::Value::from_double(v.as_double())
                              : interp::Value::from_int(v.as_int()));
    }
    return buf;
}

Json context_to_json(const interp::Context& ctx) {
    Json j = Json::object();
    Json symbols = Json::object();
    for (const auto& [name, value] : ctx.symbols) symbols[name] = Json(value);
    j["symbols"] = std::move(symbols);
    Json buffers = Json::object();
    for (const auto& [name, buffer] : ctx.buffers) buffers[name] = buffer_to_json(buffer);
    j["buffers"] = std::move(buffers);
    return j;
}

interp::Context context_from_json(const Json& j) {
    interp::Context ctx;
    for (const auto& [name, value] : j.at("symbols").as_object())
        ctx.symbols[name] = value.as_int();
    for (const auto& [name, buffer] : j.at("buffers").as_object())
        ctx.buffers.emplace(name, buffer_from_json(buffer));
    return ctx;
}

Json testcase_to_json(const Cutout& cutout, const ir::SDFG& transformed,
                      const interp::Context& inputs, const std::string& transformation,
                      const std::string& verdict, const std::string& detail) {
    Json j = Json::object();
    j["transformation"] = transformation;
    j["verdict"] = verdict;
    j["detail"] = detail;
    j["original"] = ir::to_json(cutout.program);
    j["transformed"] = ir::to_json(transformed);
    Json system_state = Json::array();
    for (const auto& name : cutout.system_state) system_state.push_back(Json(name));
    j["system_state"] = std::move(system_state);
    j["inputs"] = context_to_json(inputs);
    return j;
}

LoadedTestCase testcase_from_json(const Json& j) {
    LoadedTestCase tc;
    tc.original = ir::sdfg_from_json(j.at("original"));
    tc.transformed = ir::sdfg_from_json(j.at("transformed"));
    tc.inputs = context_from_json(j.at("inputs"));
    for (const auto& name : j.at("system_state").as_array())
        tc.system_state.insert(name.as_string());
    tc.transformation = j.at("transformation").as_string();
    tc.verdict = j.at("verdict").as_string();
    tc.detail = j.at("detail").as_string();
    return tc;
}

std::string save_testcase_artifact(const std::string& dir, const Cutout& cutout,
                                   const ir::SDFG& transformed, const interp::Context& inputs,
                                   const FuzzReport& report) {
    const Json j = testcase_to_json(cutout, transformed, inputs, report.transformation,
                                    verdict_name(report.verdict), report.detail);
    const std::string text = j.dump(2);
    // Content-derived name keeps repeated runs deterministic.
    std::uint64_t h = 0x4242;
    for (char c : text) h = common::splitmix64(h ^ static_cast<std::uint64_t>(c));
    char name[64];
    std::snprintf(name, sizeof(name), "testcase_%016llx.json",
                  static_cast<unsigned long long>(h));
    const std::string path = dir + "/" + name;
    std::ofstream out(path);
    if (!out) return "";
    out << text;
    return path;
}

}  // namespace ff::core
