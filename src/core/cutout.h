// Cutout extraction (Sec. 3): turns the change set of a transformation into
// a minimal stand-alone program with an explicit input configuration and
// system state.
//
// Dataflow-only change sets in a single state produce a sub-state cutout:
// the affected nodes are closed over their enclosing map scopes, direct
// data dependencies (access nodes) are copied in, containers are minimized
// to the accessed bounding boxes, and the side-effect analyses classify
// containers into input configuration and system state.  Containers in
// either set are exposed as non-transient (fuzzable inputs / compared
// outputs); everything else becomes transient.
//
// Change sets touching control flow promote to a whole-program cutout
// (conservative and always sound; the paper's multi-state extraction is an
// optimization of this).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>

#include "core/side_effects.h"
#include "ir/sdfg.h"
#include "transforms/transformation.h"

namespace ff::core {

struct CutoutOptions {
    /// Shrink containers to the accessed bounding box (Sec. 3, step 3).
    bool minimize_containers = true;
    /// Symbol values used to concretize overlap tests and volumes.
    sym::Bindings defaults;
};

struct Cutout {
    ir::SDFG program;
    std::set<std::string> input_config;
    std::set<std::string> system_state;

    /// Original (state, node) -> cutout (state, node).
    std::map<xform::NodeRef, xform::NodeRef> node_map;
    std::map<ir::StateId, ir::StateId> state_map;
    bool whole_program = false;

    /// Total input-configuration volume (elements) under `bindings`.
    std::int64_t concrete_input_volume(const sym::Bindings& bindings) const;

    /// Remaps a match found in the original program into this cutout.
    /// Throws common::Error if a pattern node was not carried over.
    xform::Match remap_match(const xform::Match& original) const;
};

/// Extracts a cutout of `p` around the change set `delta`.
Cutout extract_cutout(const ir::SDFG& p, const xform::ChangeSet& delta,
                      const CutoutOptions& opts = {});

/// The degenerate "cutout": the whole program, with the input configuration
/// and system state classified from non-transient containers.  Used as the
/// traditional-testing baseline the paper compares against.
Cutout whole_program_cutout(const ir::SDFG& p);

}  // namespace ff::core
