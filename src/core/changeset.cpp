#include "core/changeset.h"

namespace ff::core {

namespace {

bool ranges_equal(const std::vector<ir::Range>& a, const std::vector<ir::Range>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (!a[i].equals(b[i])) return false;
    return true;
}

bool nodes_equal(const ir::DataflowNode& a, const ir::DataflowNode& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
        case ir::NodeKind::Access: return a.data == b.data;
        case ir::NodeKind::Tasklet: return a.code == b.code;
        case ir::NodeKind::MapEntry:
            return a.params == b.params && ranges_equal(a.map_ranges, b.map_ranges) &&
                   a.schedule == b.schedule;
        case ir::NodeKind::MapExit: return a.scope_id == b.scope_id;
        case ir::NodeKind::Library: return a.lib == b.lib;
        case ir::NodeKind::Comm: return a.comm == b.comm && a.comm_root == b.comm_root;
    }
    return true;
}

bool memlet_edges_equal(const ir::MemletEdge& a, const ir::MemletEdge& b) {
    return a.memlet.data == b.memlet.data && a.memlet.subset.equals(b.memlet.subset) &&
           a.src_conn == b.src_conn && a.dst_conn == b.dst_conn;
}

bool interstate_equal(const ir::InterstateEdge& a, const ir::InterstateEdge& b) {
    if ((a.condition == nullptr) != (b.condition == nullptr)) return false;
    if (a.condition && !a.condition->equals(*b.condition)) return false;
    if (a.assignments.size() != b.assignments.size()) return false;
    for (std::size_t i = 0; i < a.assignments.size(); ++i) {
        if (a.assignments[i].first != b.assignments[i].first) return false;
        if (!a.assignments[i].second->equals(*b.assignments[i].second)) return false;
    }
    return true;
}

}  // namespace

xform::ChangeSet diff_changeset(const ir::SDFG& before, const ir::SDFG& after) {
    xform::ChangeSet delta;

    // State-level diff (slot ids are stable across in-place mutation).
    std::set<ir::StateId> before_states, after_states;
    for (ir::StateId s : before.states()) before_states.insert(s);
    for (ir::StateId s : after.states()) after_states.insert(s);
    for (ir::StateId s : before_states)
        if (!after_states.count(s)) delta.control_flow_states.insert(s);
    for (ir::StateId s : after_states)
        if (!before_states.count(s)) delta.control_flow_states.insert(s);

    // Interstate edge diff.
    const auto ecount = std::max(before.cfg().edges().size(), after.cfg().edges().size());
    (void)ecount;
    std::set<graph::EdgeId> before_ise, after_ise;
    for (graph::EdgeId e : before.cfg().edges()) before_ise.insert(e);
    for (graph::EdgeId e : after.cfg().edges()) after_ise.insert(e);
    for (graph::EdgeId e : before_ise) {
        if (!after_ise.count(e)) {
            delta.control_flow_states.insert(before.cfg().edge(e).src);
            delta.control_flow_states.insert(before.cfg().edge(e).dst);
            continue;
        }
        const auto& eb = before.cfg().edge(e);
        const auto& ea = after.cfg().edge(e);
        if (eb.src != ea.src || eb.dst != ea.dst || !interstate_equal(eb.data, ea.data)) {
            delta.control_flow_states.insert(eb.src);
            delta.control_flow_states.insert(eb.dst);
        }
    }
    for (graph::EdgeId e : after_ise) {
        if (!before_ise.count(e)) {
            delta.control_flow_states.insert(after.cfg().edge(e).src);
            delta.control_flow_states.insert(after.cfg().edge(e).dst);
        }
    }

    // Dataflow diff per common state.
    for (ir::StateId sid : before.states()) {
        if (!after_states.count(sid)) continue;
        const auto& gb = before.state(sid).graph();
        const auto& ga = after.state(sid).graph();

        std::set<ir::NodeId> bn, an;
        for (ir::NodeId n : gb.nodes()) bn.insert(n);
        for (ir::NodeId n : ga.nodes()) an.insert(n);
        for (ir::NodeId n : bn)
            if (!an.count(n) || !nodes_equal(gb.node(n), ga.node(n))) delta.add(sid, n);
        // Added nodes have no counterpart in `before`; attribute the change
        // to their neighbours that do exist there (the paper's edge rule).
        for (ir::NodeId n : an) {
            if (bn.count(n)) continue;
            for (graph::EdgeId eid : ga.in_edges(n))
                if (bn.count(ga.edge(eid).src)) delta.add(sid, ga.edge(eid).src);
            for (graph::EdgeId eid : ga.out_edges(n))
                if (bn.count(ga.edge(eid).dst)) delta.add(sid, ga.edge(eid).dst);
        }

        std::set<graph::EdgeId> be, ae;
        for (graph::EdgeId e : gb.edges()) be.insert(e);
        for (graph::EdgeId e : ga.edges()) ae.insert(e);
        auto mark_edge = [&](const ir::State::Graph& g, graph::EdgeId e,
                             const std::set<ir::NodeId>& exists) {
            if (exists.count(g.edge(e).src)) delta.add(sid, g.edge(e).src);
            if (exists.count(g.edge(e).dst)) delta.add(sid, g.edge(e).dst);
        };
        for (graph::EdgeId e : be) {
            if (!ae.count(e)) {
                mark_edge(gb, e, bn);
                continue;
            }
            const auto& eb = gb.edge(e);
            const auto& ea = ga.edge(e);
            if (eb.src != ea.src || eb.dst != ea.dst || !memlet_edges_equal(eb.data, ea.data))
                mark_edge(gb, e, bn);
        }
        for (graph::EdgeId e : ae)
            if (!be.count(e)) mark_edge(ga, e, bn);
    }
    return delta;
}

}  // namespace ff::core
