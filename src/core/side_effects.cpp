#include "core/side_effects.h"

#include "common/error.h"

namespace ff::core {

bool subsets_may_overlap(const ir::Subset& a, const ir::Subset& b,
                         const sym::Bindings& defaults) {
    try {
        return ir::concrete_subsets_overlap(a.concretize(defaults), b.concretize(defaults));
    } catch (const common::UnboundSymbolError&) {
        return true;  // parametric bounds: conservative
    }
}

namespace {

bool overlaps_any(const ir::Subset& subset, const std::vector<ir::Subset>& set,
                  const sym::Bindings& defaults) {
    for (const auto& other : set)
        if (subsets_may_overlap(subset, other, defaults)) return true;
    return false;
}

}  // namespace

SideEffects analyze_side_effects(const ir::SDFG& p, ir::StateId sid,
                                 const std::set<ir::NodeId>& closure,
                                 const std::set<ir::NodeId>& boundary,
                                 const sym::Bindings& defaults) {
    SideEffects out;
    const ir::State& st = p.state(sid);
    const auto& g = st.graph();

    std::set<ir::NodeId> cutout_nodes = closure;
    cutout_nodes.insert(boundary.begin(), boundary.end());

    // Write/read sets of the cutout: edges between cutout nodes with at
    // least one endpoint in the computation closure.
    for (graph::EdgeId eid : g.edges()) {
        const auto& e = g.edge(eid);
        const bool src_in = cutout_nodes.count(e.src) > 0;
        const bool dst_in = cutout_nodes.count(e.dst) > 0;
        const bool touches_closure = closure.count(e.src) || closure.count(e.dst);
        if (!src_in || !dst_in || !touches_closure) continue;
        if (g.node(e.dst).kind == ir::NodeKind::Access)
            out.writes[e.data.memlet.data].push_back(e.data.memlet.subset);
        if (g.node(e.src).kind == ir::NodeKind::Access)
            out.reads[e.data.memlet.data].push_back(e.data.memlet.subset);
    }

    // --- External data analysis (Sec. 3.1 / 3.2) ---
    for (const auto& [data, subsets] : out.writes) {
        (void)subsets;
        if (!p.container(data).transient) out.system_state.insert(data);
    }
    for (const auto& [data, subsets] : out.reads) {
        (void)subsets;
        if (!p.container(data).transient) out.input_config.insert(data);
    }

    // --- Program flow analysis: system state (forward BFS) ---
    // Same state: reads downstream of the cutout.
    const std::set<ir::NodeId> forward = g.bfs_from(cutout_nodes, /*forward=*/true);
    for (graph::EdgeId eid : g.edges()) {
        const auto& e = g.edge(eid);
        if (g.node(e.src).kind != ir::NodeKind::Access) continue;
        if (closure.count(e.dst)) continue;  // read inside the cutout
        if (!forward.count(e.src)) continue;  // not downstream of the cutout
        auto it = out.writes.find(e.data.memlet.data);
        if (it == out.writes.end()) continue;
        if (overlaps_any(e.data.memlet.subset, it->second, defaults)) {
            out.system_state.insert(e.data.memlet.data);
            out.downstream_reads[e.data.memlet.data].push_back(e.data.memlet.subset);
        }
    }
    // Later states (all states reachable from sid in the state machine).
    const std::set<ir::StateId> later = p.cfg().reachable_from(sid);
    for (ir::StateId other : later) {
        if (other == sid) continue;
        const auto& og = p.state(other).graph();
        for (graph::EdgeId eid : og.edges()) {
            const auto& e = og.edge(eid);
            if (og.node(e.src).kind != ir::NodeKind::Access) continue;
            auto it = out.writes.find(e.data.memlet.data);
            if (it == out.writes.end()) continue;
            if (overlaps_any(e.data.memlet.subset, it->second, defaults)) {
                out.system_state.insert(e.data.memlet.data);
                out.downstream_reads[e.data.memlet.data].push_back(e.data.memlet.subset);
            }
        }
    }

    // --- Program flow analysis: input configuration (reverse BFS) ---
    const std::set<ir::NodeId> backward = g.bfs_from(cutout_nodes, /*forward=*/false);
    for (graph::EdgeId eid : g.edges()) {
        const auto& e = g.edge(eid);
        if (g.node(e.dst).kind != ir::NodeKind::Access) continue;  // writes end in accesses
        if (closure.count(e.src)) continue;  // write inside the cutout
        if (!backward.count(e.dst)) continue;  // cannot flow into the cutout
        auto it = out.reads.find(e.data.memlet.data);
        if (it == out.reads.end()) continue;
        if (overlaps_any(e.data.memlet.subset, it->second, defaults))
            out.input_config.insert(e.data.memlet.data);
    }
    const std::set<ir::StateId> earlier = p.cfg().reaching(sid);
    for (ir::StateId other : earlier) {
        if (other == sid) continue;
        const auto& og = p.state(other).graph();
        for (graph::EdgeId eid : og.edges()) {
            const auto& e = og.edge(eid);
            if (og.node(e.dst).kind != ir::NodeKind::Access) continue;
            auto it = out.reads.find(e.data.memlet.data);
            if (it == out.reads.end()) continue;
            if (overlaps_any(e.data.memlet.subset, it->second, defaults))
                out.input_config.insert(e.data.memlet.data);
        }
    }

    return out;
}

}  // namespace ff::core
