// Gray-box constraint derivation (Sec. 5.1).
//
// Static analysis of the cutout and the original program yields sampling
// constraints that avoid uninteresting crashes:
//  * symbols used in container shapes are sizes: sampled in [1, size_max];
//  * symbols used to index into a container are bounded by that dimension's
//    extent: [0, extent-1] (evaluated after sizes are sampled);
//  * symbols recognized as loop iteration variables of the original program
//    are bounded by the loop bounds.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/sdfg.h"

namespace ff::core {

struct Interval {
    std::int64_t lo = 0;
    std::int64_t hi = 0;
};

/// Symbol bounded by a container dimension: [0, extent(dim) - 1].
struct IndexBound {
    std::string container;
    std::size_t dim = 0;
};

struct Constraints {
    /// Symbols to sample (cutout free symbols minus interstate-assigned).
    std::set<std::string> free_symbols;
    /// Subset of free_symbols used in container shapes.
    std::set<std::string> size_symbols;
    /// Extent bounds per symbol (conjunction: min over all bounds).
    std::map<std::string, std::vector<IndexBound>> index_bounds;
    /// Loop ranges recovered from the original state machine.
    std::map<std::string, Interval> loop_ranges;
};

Constraints derive_constraints(const ir::SDFG& original, const ir::SDFG& cutout);

/// Best-effort recognition of state-machine loops: `s := c0` on one edge,
/// `s := s + c` on a back edge, a comparison `s CMP const` as a condition.
std::map<std::string, Interval> detect_loop_ranges(const ir::SDFG& sdfg);

}  // namespace ff::core
