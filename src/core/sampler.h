// Input-configuration sampling for differential fuzzing (Sec. 5.1).
//
// Gray-box mode applies the derived constraints: size symbols in
// [1, size_max], index symbols within the (sampled) container extents, loop
// variables within their loop ranges.  Uniform mode samples every symbol
// from one wide interval — the paper's baseline that "may lead to many
// uninteresting crashes".  Sampling is fully deterministic in
// (seed, trial index).
#pragma once

#include "core/constraints.h"
#include "interp/interpreter.h"

namespace ff::core {

struct SamplerConfig {
    std::uint64_t seed = 0x5eed;
    std::int64_t size_max = 16;
    double float_lo = -1.0;
    double float_hi = 1.0;
    std::int64_t int_lo = -8;
    std::int64_t int_hi = 8;
    bool gray_box = true;
    /// Uniform-mode symbol interval (may produce invalid sizes on purpose).
    std::int64_t uniform_lo = -64;
    std::int64_t uniform_hi = 64;
};

class InputSampler {
public:
    explicit InputSampler(SamplerConfig config = {}) : config_(config) {}

    const SamplerConfig& config() const { return config_; }

    /// Samples symbol values + input buffers for one trial.  Throws when a
    /// container shape cannot be resolved from the sampled symbols (the
    /// caller treats this as an uninteresting trial).
    interp::Context sample(const ir::SDFG& cutout, const std::set<std::string>& input_config,
                           const Constraints& constraints, std::uint64_t trial) const;

private:
    SamplerConfig config_;
};

}  // namespace ff::core
