// Input-configuration sampling for differential fuzzing (Sec. 5.1).
//
// Gray-box mode applies the derived constraints: size symbols in
// [1, size_max], index symbols within the (sampled) container extents, loop
// variables within their loop ranges.  Uniform mode samples every symbol
// from one wide interval — the paper's baseline that "may lead to many
// uninteresting crashes".  Sampling is fully deterministic in
// (seed, trial index).
#pragma once

#include "common/error.h"
#include "core/constraints.h"
#include "interp/interpreter.h"

namespace ff::core {

struct SamplerConfig {
    std::uint64_t seed = 0x5eed;
    std::int64_t size_max = 16;
    double float_lo = -1.0;
    double float_hi = 1.0;
    std::int64_t int_lo = -8;
    std::int64_t int_hi = 8;
    bool gray_box = true;
    /// Uniform-mode symbol interval (may produce invalid sizes on purpose).
    std::int64_t uniform_lo = -64;
    std::int64_t uniform_hi = 64;
};

class InputSampler {
public:
    /// Throws common::ValidationError on a config whose intervals are
    /// inverted (float_lo > float_hi, int_lo > int_hi) or whose size_max
    /// admits no valid size (< 1) — catching nonsense at construction
    /// instead of sampling from an empty interval trials later.
    explicit InputSampler(SamplerConfig config = {}) : config_(config) {
        if (config_.float_lo > config_.float_hi)
            throw common::ValidationError("sampler float interval is empty: float_lo " +
                                          std::to_string(config_.float_lo) + " > float_hi " +
                                          std::to_string(config_.float_hi));
        if (config_.int_lo > config_.int_hi)
            throw common::ValidationError("sampler int interval is empty: int_lo " +
                                          std::to_string(config_.int_lo) + " > int_hi " +
                                          std::to_string(config_.int_hi));
        if (config_.size_max < 1)
            throw common::ValidationError("sampler size_max must be >= 1, got " +
                                          std::to_string(config_.size_max));
    }

    const SamplerConfig& config() const { return config_; }

    /// Samples symbol values + input buffers for one trial.  Throws when a
    /// container shape cannot be resolved from the sampled symbols (the
    /// caller treats this as an uninteresting trial).
    interp::Context sample(const ir::SDFG& cutout, const std::set<std::string>& input_config,
                           const Constraints& constraints, std::uint64_t trial) const;

    /// Deterministic mutation of a corpus parent: keeps or redraws each
    /// symbol (size redraws are boundary-biased toward the empty / one-point
    /// / full extents that flip def-use region classes) and refills input
    /// buffers for the mutated shapes.  A pure function of (config seed,
    /// trial, corpus_digest, parent) — the feedback scheduler derives
    /// corpus_digest from the merged previous-generation corpus, so every
    /// shard mutates identically (docs/ARCHITECTURE.md clause 10).
    interp::Context mutate(const ir::SDFG& cutout, const std::set<std::string>& input_config,
                           const Constraints& constraints, std::uint64_t trial,
                           const interp::Context& parent, std::uint32_t corpus_digest) const;

private:
    SamplerConfig config_;
};

}  // namespace ff::core
