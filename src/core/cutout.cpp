#include "core/cutout.h"

#include <algorithm>

#include "common/error.h"

namespace ff::core {

using ir::DataflowNode;
using ir::NodeId;
using ir::NodeKind;

std::int64_t Cutout::concrete_input_volume(const sym::Bindings& bindings) const {
    std::int64_t total = 0;
    for (const auto& name : input_config)
        total += program.container(name).total_size()->evaluate(bindings);
    return total;
}

xform::Match Cutout::remap_match(const xform::Match& original) const {
    xform::Match remapped = original;
    if (whole_program) return remapped;  // ids preserved by SDFG copy
    auto sit = state_map.find(original.state);
    if (sit == state_map.end()) throw common::Error("cutout: match state not in cutout");
    remapped.state = sit->second;
    remapped.nodes.clear();
    for (ir::NodeId n : original.nodes) {
        auto nit = node_map.find(xform::NodeRef{original.state, n});
        if (nit == node_map.end()) throw common::Error("cutout: pattern node not in cutout");
        remapped.nodes.push_back(nit->second.node);
    }
    return remapped;
}

namespace {

/// Classification helpers for whole-program cutouts.
void classify_whole_program(const ir::SDFG& p, Cutout& cutout) {
    for (ir::StateId sid : p.states()) {
        const auto& g = p.state(sid).graph();
        for (graph::EdgeId eid : g.edges()) {
            const auto& e = g.edge(eid);
            const std::string& data = e.data.memlet.data;
            if (p.container(data).transient) continue;
            if (g.node(e.src).kind == NodeKind::Access) cutout.input_config.insert(data);
            if (g.node(e.dst).kind == NodeKind::Access) cutout.system_state.insert(data);
        }
    }
}

/// Expands a node set so that map scopes are included wholesale: any node
/// inside a scope pulls in the entire top-level scope it belongs to.
std::set<NodeId> scope_closure(const ir::State& st, const std::set<NodeId>& seeds) {
    std::set<NodeId> closure;
    for (NodeId n : seeds) {
        // Walk to the outermost enclosing scope.
        NodeId top = n;
        if (st.graph().node(top).kind == NodeKind::MapExit) {
            const NodeId entry = st.map_entry_of(top);
            if (entry != graph::kInvalidNode) top = entry;
        }
        while (true) {
            const NodeId parent = st.parent_scope_of(top);
            if (parent == graph::kInvalidNode) break;
            top = parent;
        }
        if (st.graph().node(top).kind == NodeKind::MapEntry) {
            closure.insert(top);
            const NodeId exit = st.map_exit_of(top);
            if (exit != graph::kInvalidNode) closure.insert(exit);
            const auto inside = st.scope_nodes(top);
            closure.insert(inside.begin(), inside.end());
        } else {
            closure.insert(top);
        }
    }
    return closure;
}

}  // namespace

Cutout whole_program_cutout(const ir::SDFG& p) {
    Cutout cutout;
    cutout.program = p;  // deep copy with preserved ids
    cutout.program.set_name(p.name() + "_cutout");
    cutout.whole_program = true;
    for (ir::StateId sid : p.states()) {
        cutout.state_map[sid] = sid;
        for (NodeId n : p.state(sid).graph().nodes())
            cutout.node_map[xform::NodeRef{sid, n}] = xform::NodeRef{sid, n};
    }
    classify_whole_program(p, cutout);
    return cutout;
}

Cutout extract_cutout(const ir::SDFG& p, const xform::ChangeSet& delta,
                      const CutoutOptions& opts) {
    Cutout cutout;

    // Determine granularity: control-flow changes or multi-state dataflow
    // changes promote to a whole-program cutout.
    std::set<ir::StateId> touched_states;
    for (const auto& ref : delta.nodes) touched_states.insert(ref.state);
    if (!delta.control_flow_states.empty() || touched_states.size() > 1)
        return whole_program_cutout(p);
    if (touched_states.empty()) throw common::Error("cutout: empty change set");

    const ir::StateId sid = *touched_states.begin();
    const ir::State& st = p.state(sid);
    const auto& g = st.graph();

    // 1. Computation closure: affected nodes, closed over map scopes and
    //    over any non-access neighbour reached by a crossing edge.
    std::set<NodeId> seeds;
    for (const auto& ref : delta.nodes) seeds.insert(ref.node);
    std::set<NodeId> closure = scope_closure(st, seeds);
    while (true) {
        // Computation nodes may not be cut apart from their non-access
        // neighbours (e.g. a tasklet feeding a tasklet directly); access
        // nodes, however, are the natural cut points of a dataflow graph —
        // the cutout must NOT grow through them into producers/consumers.
        std::set<NodeId> extra;
        for (NodeId n : closure) {
            if (g.node(n).kind == NodeKind::Access) continue;
            for (graph::EdgeId eid : g.in_edges(n)) {
                const NodeId peer = g.edge(eid).src;
                if (!closure.count(peer) && g.node(peer).kind != NodeKind::Access)
                    extra.insert(peer);
            }
            for (graph::EdgeId eid : g.out_edges(n)) {
                const NodeId peer = g.edge(eid).dst;
                if (!closure.count(peer) && g.node(peer).kind != NodeKind::Access)
                    extra.insert(peer);
            }
        }
        if (extra.empty()) break;
        const std::set<NodeId> expanded = scope_closure(st, extra);
        closure.insert(expanded.begin(), expanded.end());
    }

    // 2. Boundary: direct data dependencies (access nodes).  Closure-side
    //    access nodes are cut points: their outside edges (producers or
    //    consumers beyond the cutout) are intentionally severed.
    std::set<NodeId> boundary;
    for (NodeId n : closure) {
        if (g.node(n).kind == NodeKind::Access) continue;
        for (graph::EdgeId eid : g.in_edges(n)) {
            const NodeId peer = g.edge(eid).src;
            if (!closure.count(peer)) boundary.insert(peer);
        }
        for (graph::EdgeId eid : g.out_edges(n)) {
            const NodeId peer = g.edge(eid).dst;
            if (!closure.count(peer)) boundary.insert(peer);
        }
    }

    // 3. Side-effect analyses on the original program.
    const SideEffects effects = analyze_side_effects(p, sid, closure, boundary, opts.defaults);
    cutout.input_config = effects.input_config;
    cutout.system_state = effects.system_state;

    // 4. Build the stand-alone program.
    cutout.program = ir::SDFG(p.name() + "_cutout");
    for (const auto& s : p.symbols()) cutout.program.add_symbol(s);
    const ir::StateId new_sid = cutout.program.add_state("cutout", /*is_start=*/true);
    cutout.state_map[sid] = new_sid;
    ir::State& nst = cutout.program.state(new_sid);

    std::set<NodeId> copied = closure;
    copied.insert(boundary.begin(), boundary.end());

    std::map<NodeId, NodeId> local_map;
    std::int32_t max_scope = -1;
    for (NodeId n : g.nodes()) {  // preserve insertion order for determinism
        if (!copied.count(n)) continue;
        DataflowNode node = g.node(n);
        max_scope = std::max(max_scope, node.scope_id);
        const NodeId nn = nst.graph().add_node(std::move(node));
        local_map[n] = nn;
        cutout.node_map[xform::NodeRef{sid, n}] = xform::NodeRef{new_sid, nn};
    }
    while (nst.next_scope_id() <= max_scope) {
    }

    // Containers touched by copied edges or nodes.
    std::set<std::string> used_containers;
    for (NodeId n : copied)
        if (g.node(n).kind == NodeKind::Access) used_containers.insert(g.node(n).data);
    std::map<std::string, std::vector<const ir::Subset*>> accessed_subsets;
    for (graph::EdgeId eid : g.edges()) {
        const auto& e = g.edge(eid);
        if (!copied.count(e.src) || !copied.count(e.dst)) continue;
        if (!closure.count(e.src) && !closure.count(e.dst)) continue;
        used_containers.insert(e.data.memlet.data);
        accessed_subsets[e.data.memlet.data].push_back(&e.data.memlet.subset);
        nst.graph().add_edge(local_map.at(e.src), local_map.at(e.dst), e.data);
    }

    // 5. Container descriptors, minimized to the accessed bounding box when
    //    all accessed subsets are parameter-free and strictly smaller.
    for (const auto& name : used_containers) {
        ir::DataDesc desc = p.container(name);
        if (opts.minimize_containers && !desc.is_scalar()) {
            auto it = accessed_subsets.find(name);
            if (it != accessed_subsets.end() && !it->second.empty()) {
                // Bounding box over the parameter-free (outer/union)
                // subsets.  Per-iteration subsets referencing map parameters
                // are refinements of those unions and are skipped.
                auto is_param_free = [&](const ir::Subset& s) {
                    for (const auto& r : s.ranges) {
                        std::set<std::string> syms;
                        r.begin->collect_symbols(syms);
                        r.end->collect_symbols(syms);
                        for (const auto& sname : syms)
                            if (!p.has_symbol(sname)) return false;
                    }
                    return true;
                };
                std::optional<ir::Subset> bbox;
                for (const ir::Subset* s : it->second) {
                    if (!is_param_free(*s)) continue;
                    if (!bbox) bbox = *s;
                    else bbox = ir::Subset::bounding_union(*bbox, *s);
                }
                // System-state containers stay large enough to cover what
                // downstream readers observe (a partially-written output
                // compared only on the written range would mask bugs that
                // corrupt the rest of the container).
                auto dit = effects.downstream_reads.find(name);
                if (dit != effects.downstream_reads.end()) {
                    for (const ir::Subset& s : dit->second) {
                        if (!is_param_free(s) || s.dims() != desc.dims()) continue;
                        if (!bbox) bbox = s;
                        else bbox = ir::Subset::bounding_union(*bbox, s);
                    }
                }
                if (bbox && bbox->dims() == desc.dims()) {
                    std::vector<sym::ExprPtr> new_shape;
                    for (const auto& r : bbox->ranges) new_shape.push_back(r.end + 1);
                    // Adopt only when strictly smaller under the defaults.
                    try {
                        ir::DataDesc candidate = desc;
                        candidate.shape = new_shape;
                        const std::int64_t before =
                            desc.total_size()->evaluate(opts.defaults);
                        const std::int64_t after =
                            candidate.total_size()->evaluate(opts.defaults);
                        if (after < before) desc.shape = std::move(new_shape);
                    } catch (const common::UnboundSymbolError&) {
                        // Unresolvable sizes: keep the original shape.
                    }
                }
            }
        }
        // Expose inputs/outputs as external; internals become transients.
        desc.transient =
            !(cutout.input_config.count(name) || cutout.system_state.count(name));
        cutout.program.add_array(name, desc.dtype, desc.shape, desc.transient, desc.storage);
    }

    // Retain only symbols that still resolve (all of p's symbols do).
    return cutout;
}

}  // namespace ff::core
