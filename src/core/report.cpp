#include "core/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "feedback/coverage.h"

namespace ff::core {

const TrialRecord* merge_trial_records(const std::vector<TrialRecord>& records,
                                       FuzzReport& report) {
    // Distinct pairs hit across the counted records (the same canonical
    // prefix the cost sums cover) — like every other merged field, a pure
    // function of the records below the lowest failure.
    std::vector<std::uint64_t> cov_union;
    const auto fold_coverage = [&](const TrialRecord& rec) {
        if (rec.coverage.empty()) return;
        if (rec.coverage.size() > cov_union.size()) cov_union.resize(rec.coverage.size(), 0);
        for (std::size_t i = 0; i < rec.coverage.size(); ++i) cov_union[i] |= rec.coverage[i];
    };
    const TrialRecord* failing = nullptr;
    for (const TrialRecord& rec : records) {
        if (rec.kind == TrialRecord::Kind::NotRun) break;  // past the first failure
        report.original_points += rec.original_points;
        report.original_instructions += rec.original_instructions;
        report.transformed_points += rec.transformed_points;
        report.transformed_instructions += rec.transformed_instructions;
        fold_coverage(rec);
        if (rec.kind == TrialRecord::Kind::Uninteresting) {
            ++report.uninteresting;
            continue;
        }
        ++report.trials;
        if (rec.kind == TrialRecord::Kind::Pass) continue;
        report.verdict = rec.verdict;
        report.detail = rec.detail;
        failing = &rec;
        break;
    }
    report.pairs_hit = feedback::cov_popcount(cov_union);
    return failing;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
        }
        out << "|\n";
    };
    emit_row(header_);
    for (std::size_t c = 0; c < header_.size(); ++c)
        out << "|" << std::string(widths[c] + 2, '-');
    out << "|\n";
    for (const auto& row : rows_) emit_row(row);
    return out.str();
}

std::vector<AuditSummary> summarize_audit(const std::vector<FuzzReport>& reports) {
    std::map<std::string, AuditSummary> by_name;
    std::vector<std::string> order;
    for (const FuzzReport& r : reports) {
        auto it = by_name.find(r.transformation);
        if (it == by_name.end()) {
            order.push_back(r.transformation);
            it = by_name.emplace(r.transformation, AuditSummary{}).first;
            it->second.transformation = r.transformation;
        }
        AuditSummary& s = it->second;
        ++s.instances;
        s.total_seconds += r.seconds;
        s.total_trials += r.trials;
        s.total_uninteresting += r.uninteresting;
        s.total_pairs += r.pairs_total;
        s.total_pairs_hit += r.pairs_hit;
        s.total_corpus += r.corpus_size;
        if (!r.artifact_error.empty()) ++s.artifact_errors;
        s.threads = std::max(s.threads, r.threads);
        if (r.failed()) {
            ++s.failures;
            ++s.categories[verdict_name(r.verdict)];
        }
    }
    std::vector<AuditSummary> out;
    out.reserve(order.size());
    for (const auto& name : order) out.push_back(by_name.at(name));
    return out;
}

std::string audit_table(const std::vector<AuditSummary>& summaries) {
    TextTable table({"Transformation", "Instances", "Failures", "Trials/s", "Threads",
                     "Pairs hit", "Corpus", "Failure classes", "Artifact errors"});
    for (const AuditSummary& s : summaries) {
        std::string classes;
        for (const auto& [name, count] : s.categories) {
            if (!classes.empty()) classes += ", ";
            classes += name + " x" + std::to_string(count);
        }
        if (classes.empty()) classes = "-";
        char tps[32];
        std::snprintf(tps, sizeof(tps), "%.0f", s.trials_per_second());
        const std::string pairs =
            s.total_pairs > 0
                ? std::to_string(s.total_pairs_hit) + "/" + std::to_string(s.total_pairs)
                : "-";
        table.add_row({s.transformation, std::to_string(s.instances), std::to_string(s.failures),
                       tps, std::to_string(s.threads), pairs,
                       s.total_pairs > 0 ? std::to_string(s.total_corpus) : "-", classes,
                       s.artifact_errors > 0 ? std::to_string(s.artifact_errors) : "-"});
    }
    return table.to_string();
}

}  // namespace ff::core
