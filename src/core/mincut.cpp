#include "core/mincut.h"

#include <algorithm>

#include "common/error.h"
#include "graph/maxflow.h"

namespace ff::core {

using graph::FlowEdge;
using graph::kInfiniteCapacity;
using ir::NodeId;
using ir::NodeKind;

namespace {

/// Memlet volume under defaults; infinite when symbolic parameters remain.
std::int64_t edge_volume(const ir::MemletEdge& e, const sym::Bindings& defaults) {
    try {
        return e.memlet.volume()->evaluate(defaults);
    } catch (const common::UnboundSymbolError&) {
        return kInfiniteCapacity;
    }
}

std::int64_t container_volume(const ir::SDFG& p, const std::string& name,
                              const sym::Bindings& defaults) {
    try {
        return p.container(name).total_size()->evaluate(defaults);
    } catch (const common::UnboundSymbolError&) {
        return kInfiniteCapacity;
    }
}

}  // namespace

MinCutResult minimize_input_configuration(const ir::SDFG& p, const xform::ChangeSet& delta,
                                          const Cutout& initial, const CutoutOptions& opts) {
    MinCutResult result;
    result.cutout = initial;
    result.volume_before = initial.concrete_input_volume(opts.defaults);
    result.volume_after = result.volume_before;
    if (initial.whole_program) return result;

    // Cutout node set in the original program.
    ir::StateId sid = graph::kInvalidNode;
    std::set<NodeId> cutout_nodes;
    for (const auto& [orig, mapped] : initial.node_map) {
        (void)mapped;
        sid = orig.state;
        cutout_nodes.insert(orig.node);
    }
    if (sid == graph::kInvalidNode) return result;
    const ir::State& st = p.state(sid);
    const auto& g = st.graph();

    // Node indexing: state nodes + S + T.
    std::map<NodeId, int> index;
    for (NodeId n : g.nodes()) index[n] = static_cast<int>(index.size());
    const int S = static_cast<int>(index.size());
    const int T = S + 1;
    const int num_nodes = T + 1;

    // Nodes that can re-enter the cutout (for the free-edge rule).
    const std::set<NodeId> reaches_cutout = g.bfs_from(cutout_nodes, /*forward=*/false);

    std::vector<FlowEdge> net;
    auto add_net_edge = [&](int u, int v, std::int64_t cap) {
        if (cap <= 0) return;  // zero-capacity edges never carry flow
        net.push_back(FlowEdge{u, v, cap});
    };

    // Input-configuration data nodes inside the cutout.
    std::set<NodeId> input_accesses;
    for (NodeId n : cutout_nodes) {
        const auto& node = g.node(n);
        if (node.kind == NodeKind::Access && initial.input_config.count(node.data))
            input_accesses.insert(n);
    }

    // 1/2. Source hookup for nodes outside the cutout.
    for (NodeId n : g.nodes()) {
        if (cutout_nodes.count(n)) continue;
        const auto& node = g.node(n);
        const bool is_data = node.kind == NodeKind::Access;
        const bool external = is_data && !p.container(node.data).transient;
        if (g.in_degree(n) == 0) {
            add_net_edge(S, index.at(n),
                         is_data ? container_volume(p, node.data, opts.defaults) : 0);
        } else if (external) {
            add_net_edge(S, index.at(n), container_volume(p, node.data, opts.defaults));
            // Their other in-edges become infinite (handled below by
            // overriding the capacity rule for edges into external data).
        }
    }

    // 3-5. Edge translation.
    for (graph::EdgeId eid : g.edges()) {
        const auto& e = g.edge(eid);
        const bool src_in = cutout_nodes.count(e.src) > 0;
        const bool dst_in = cutout_nodes.count(e.dst) > 0;
        if (src_in && dst_in) continue;  // internal: removed with the cutout

        if (!src_in && dst_in) {
            // Producer feeding the cutout: redirect into T if it feeds an
            // input-configuration access; other feeds disappear with the
            // cutout.
            if (input_accesses.count(e.dst))
                add_net_edge(index.at(e.src), T, edge_volume(e.data, opts.defaults));
            continue;
        }
        if (src_in && !dst_in) {
            // Edge leaving the cutout: free (S->T cap 0, i.e. omitted) when
            // the destination can re-enter the cutout, otherwise re-sourced
            // at T (irrelevant to S->T flow but kept for fidelity).
            if (!reaches_cutout.count(e.dst))
                add_net_edge(T, index.at(e.dst), edge_volume(e.data, opts.defaults));
            continue;
        }

        // Plain edge outside the cutout.
        const auto& dst_node = g.node(e.dst);
        const auto& src_node = g.node(e.src);
        std::int64_t cap = edge_volume(e.data, opts.defaults);
        if (src_node.kind == NodeKind::Access) cap = kInfiniteCapacity;  // cut before data
        if (dst_node.kind == NodeKind::Access && !p.container(dst_node.data).transient)
            cap = kInfiniteCapacity;  // external data is always charged via S
        add_net_edge(index.at(e.src), index.at(e.dst), cap);
    }

    // Pure-source input accesses: their cost is unavoidable (S->T).
    for (NodeId a : input_accesses) {
        bool has_external_producer = false;
        for (graph::EdgeId eid : g.in_edges(a))
            has_external_producer |= !cutout_nodes.count(g.edge(eid).src);
        if (!has_external_producer) {
            const std::string& data = g.node(a).data;
            std::int64_t cap = container_volume(p, data, opts.defaults);
            if (initial.program.has_container(data)) {
                // Use the minimized extent when available.
                try {
                    cap = initial.program.container(data).total_size()->evaluate(opts.defaults);
                } catch (const common::UnboundSymbolError&) {
                }
            }
            add_net_edge(S, T, cap);
        }
    }

    const graph::MaxFlowResult flow = graph::max_flow(num_nodes, net, S, T);

    // Expansion: T-side nodes that can reach the cutout.
    std::set<NodeId> expansion;
    for (const auto& [n, idx] : index) {
        if (flow.source_side.count(idx)) continue;
        if (cutout_nodes.count(n)) continue;
        if (!reaches_cutout.count(n)) continue;
        expansion.insert(n);
    }
    if (expansion.empty()) return result;

    xform::ChangeSet expanded_delta = delta;
    for (NodeId n : expansion) expanded_delta.add(sid, n);
    Cutout expanded = extract_cutout(p, expanded_delta, opts);
    const std::int64_t after = expanded.concrete_input_volume(opts.defaults);
    result.nodes_added = expansion.size();
    if (after < result.volume_before) {
        result.improved = true;
        result.volume_after = after;
        result.cutout = std::move(expanded);
    } else {
        result.nodes_added = 0;
    }
    return result;
}

}  // namespace ff::core
