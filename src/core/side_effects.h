// Side-effect analyses: system state and input configuration (Sec. 3.1/3.2).
//
// Given the node set of a prospective cutout inside one state of the
// original program, determine:
//  * system state — containers written inside the cutout that are external
//    (non-transient) or read again on some path after the cutout (forward
//    BFS through the dataflow graph and the state machine, with
//    subset-overlap checks on the written/read ranges);
//  * input configuration — containers read inside the cutout that are
//    external or written on some path reaching the cutout (reverse BFS).
//
// Overlap tests concretize symbolic subsets under caller-provided default
// symbol values; ranges that stay symbolic (e.g. map parameters) are
// conservatively treated as overlapping.
#pragma once

#include <map>
#include <set>
#include <string>

#include "ir/sdfg.h"
#include "transforms/transformation.h"

namespace ff::core {

struct SideEffects {
    std::set<std::string> system_state;
    std::set<std::string> input_config;
    /// Union of subsets written per container (for reporting / min-cut).
    std::map<std::string, std::vector<ir::Subset>> writes;
    std::map<std::string, std::vector<ir::Subset>> reads;
    /// Overlapping *downstream* reads of system-state containers.  Container
    /// minimization must keep these regions: they are the part of the
    /// system state the rest of the program observes, even where the cutout
    /// itself only touches a smaller range.
    std::map<std::string, std::vector<ir::Subset>> downstream_reads;
};

/// `closure` are the computation nodes of the cutout, `boundary` its copied
/// access nodes; both live in state `sid` of `p`.
SideEffects analyze_side_effects(const ir::SDFG& p, ir::StateId sid,
                                 const std::set<ir::NodeId>& closure,
                                 const std::set<ir::NodeId>& boundary,
                                 const sym::Bindings& defaults);

/// Conservative overlap test between two symbolic subsets under `defaults`
/// (unresolvable bounds count as overlapping).
bool subsets_may_overlap(const ir::Subset& a, const ir::Subset& b,
                         const sym::Bindings& defaults);

}  // namespace ff::core
