// Minimum input-flow cut (Sec. 4): shrinks a cutout's input configuration
// by including upstream producers when recomputing their outputs is cheaper
// (in input volume) than sampling them.
//
// The state's dataflow graph is turned into a flow network following the
// preparation of Sec. 4.2:
//  * a virtual source S feeds every source node (data sources with capacity
//    equal to their container size) and every external data node (capacity
//    = size, with their other in-edges made infinite);
//  * the in-edges of the cutout's input-configuration data nodes are
//    redirected into a virtual sink T with capacity equal to the moved
//    volume;
//  * edges leaving the cutout are redirected (free S->T when they loop
//    back, re-sourced at T otherwise), cutout nodes are removed, and every
//    remaining data node's out-edges become infinite so cuts happen before
//    data, not after.
//
// Symbolic capacities are concretized with the caller's default symbol
// values before running Edmonds–Karp (max-flow min-cut theorem).  The
// cutout is then extended by every node on the T side that can reach it;
// the expanded extraction is adopted iff its input volume is smaller.
#pragma once

#include "core/cutout.h"

namespace ff::core {

struct MinCutResult {
    bool improved = false;
    std::int64_t volume_before = 0;  ///< input elements of the initial cutout
    std::int64_t volume_after = 0;   ///< input elements of the adopted cutout
    Cutout cutout;                   ///< the adopted cutout
    std::size_t nodes_added = 0;     ///< dataflow nodes pulled into the cutout
};

MinCutResult minimize_input_configuration(const ir::SDFG& p, const xform::ChangeSet& delta,
                                          const Cutout& initial, const CutoutOptions& opts);

}  // namespace ff::core
