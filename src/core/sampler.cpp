#include "core/sampler.h"

#include <algorithm>

#include "common/rng.h"

namespace ff::core {

interp::Context InputSampler::sample(const ir::SDFG& cutout,
                                     const std::set<std::string>& input_config,
                                     const Constraints& constraints,
                                     std::uint64_t trial) const {
    common::Rng rng(common::trial_seed(config_.seed, trial));
    interp::Context ctx;

    if (!config_.gray_box) {
        // Uniform sampling over one wide interval for every symbol.
        for (const auto& s : constraints.free_symbols)
            ctx.symbols[s] = rng.uniform_int(config_.uniform_lo, config_.uniform_hi);
    } else {
        // Pass 1: sizes (needed to evaluate index bounds).
        for (const auto& s : constraints.free_symbols)
            if (constraints.size_symbols.count(s))
                ctx.symbols[s] = rng.uniform_int(1, config_.size_max);
        // Pass 2: everything else.
        for (const auto& s : constraints.free_symbols) {
            if (constraints.size_symbols.count(s)) continue;
            auto lit = constraints.loop_ranges.find(s);
            if (lit != constraints.loop_ranges.end()) {
                ctx.symbols[s] = rng.uniform_int(lit->second.lo, lit->second.hi);
                continue;
            }
            auto iit = constraints.index_bounds.find(s);
            if (iit != constraints.index_bounds.end()) {
                std::int64_t hi = config_.size_max;
                for (const IndexBound& b : iit->second) {
                    const ir::DataDesc& desc = cutout.container(b.container);
                    if (b.dim < desc.shape.size())
                        hi = std::min(hi, desc.shape[b.dim]->evaluate(ctx.symbols) - 1);
                }
                ctx.symbols[s] = rng.uniform_int(0, std::max<std::int64_t>(0, hi));
                continue;
            }
            ctx.symbols[s] = rng.uniform_int(0, config_.size_max);
        }
    }

    // Input buffers, filled uniformly at random.
    for (const auto& name : input_config) {
        const ir::DataDesc& desc = cutout.container(name);
        interp::Buffer buf(desc.dtype, desc.concrete_shape(ctx.symbols));
        const bool is_float = ir::dtype_is_float(desc.dtype);
        for (std::int64_t i = 0; i < buf.size(); ++i) {
            if (is_float)
                buf.store(i, interp::Value::from_double(
                                 rng.uniform_double(config_.float_lo, config_.float_hi)));
            else
                buf.store(i, interp::Value::from_int(
                                 rng.uniform_int(config_.int_lo, config_.int_hi)));
        }
        ctx.buffers.emplace(name, std::move(buf));
    }
    return ctx;
}

}  // namespace ff::core
