#include "core/sampler.h"

#include <algorithm>

#include "common/rng.h"

namespace ff::core {

interp::Context InputSampler::sample(const ir::SDFG& cutout,
                                     const std::set<std::string>& input_config,
                                     const Constraints& constraints,
                                     std::uint64_t trial) const {
    common::Rng rng(common::trial_seed(config_.seed, trial));
    interp::Context ctx;

    if (!config_.gray_box) {
        // Uniform sampling over one wide interval for every symbol.
        for (const auto& s : constraints.free_symbols)
            ctx.symbols[s] = rng.uniform_int(config_.uniform_lo, config_.uniform_hi);
    } else {
        // Pass 1: sizes (needed to evaluate index bounds).
        for (const auto& s : constraints.free_symbols)
            if (constraints.size_symbols.count(s))
                ctx.symbols[s] = rng.uniform_int(1, config_.size_max);
        // Pass 2: everything else.
        for (const auto& s : constraints.free_symbols) {
            if (constraints.size_symbols.count(s)) continue;
            auto lit = constraints.loop_ranges.find(s);
            if (lit != constraints.loop_ranges.end()) {
                ctx.symbols[s] = rng.uniform_int(lit->second.lo, lit->second.hi);
                continue;
            }
            auto iit = constraints.index_bounds.find(s);
            if (iit != constraints.index_bounds.end()) {
                std::int64_t hi = config_.size_max;
                for (const IndexBound& b : iit->second) {
                    const ir::DataDesc& desc = cutout.container(b.container);
                    if (b.dim < desc.shape.size())
                        hi = std::min(hi, desc.shape[b.dim]->evaluate(ctx.symbols) - 1);
                }
                ctx.symbols[s] = rng.uniform_int(0, std::max<std::int64_t>(0, hi));
                continue;
            }
            ctx.symbols[s] = rng.uniform_int(0, config_.size_max);
        }
    }

    // Input buffers, filled uniformly at random.
    for (const auto& name : input_config) {
        const ir::DataDesc& desc = cutout.container(name);
        interp::Buffer buf(desc.dtype, desc.concrete_shape(ctx.symbols));
        const bool is_float = ir::dtype_is_float(desc.dtype);
        for (std::int64_t i = 0; i < buf.size(); ++i) {
            if (is_float)
                buf.store(i, interp::Value::from_double(
                                 rng.uniform_double(config_.float_lo, config_.float_hi)));
            else
                buf.store(i, interp::Value::from_int(
                                 rng.uniform_int(config_.int_lo, config_.int_hi)));
        }
        ctx.buffers.emplace(name, std::move(buf));
    }
    return ctx;
}

interp::Context InputSampler::mutate(const ir::SDFG& cutout,
                                     const std::set<std::string>& input_config,
                                     const Constraints& constraints, std::uint64_t trial,
                                     const interp::Context& parent,
                                     std::uint32_t corpus_digest) const {
    // Folding the corpus digest into the seed makes the mutation a pure
    // function of (seed, trial, merged previous-generation corpus): every
    // shard that merged the same corpus draws the same mutant.
    common::Rng rng(
        common::trial_seed(config_.seed ^ common::splitmix64(corpus_digest), trial));
    interp::Context ctx;

    const auto parent_symbol = [&](const std::string& s, std::int64_t& out) {
        const auto it = parent.symbols.find(s);
        if (it == parent.symbols.end()) return false;
        out = it->second;
        return true;
    };

    if (!config_.gray_box) {
        for (const auto& s : constraints.free_symbols) {
            std::int64_t v = 0;
            if (parent_symbol(s, v) && !rng.chance(0.5)) ctx.symbols[s] = v;
            else ctx.symbols[s] = rng.uniform_int(config_.uniform_lo, config_.uniform_hi);
        }
    } else {
        // Pass 1: sizes.  Redraws are boundary-biased — extents of 0 map
        // points (size 1 upper bounds often mean an empty inner range), one
        // point, and the full size_max flip region classes, which is where
        // unseen def-use pairs live.
        for (const auto& s : constraints.free_symbols) {
            if (!constraints.size_symbols.count(s)) continue;
            std::int64_t v = 0;
            const bool have = parent_symbol(s, v);
            if (have && !rng.chance(0.5)) {
                ctx.symbols[s] = std::min(std::max<std::int64_t>(v, 1), config_.size_max);
            } else if (rng.chance(0.5)) {
                const std::int64_t picks[3] = {1, std::min<std::int64_t>(2, config_.size_max),
                                               config_.size_max};
                ctx.symbols[s] = picks[rng.uniform_int(0, 2)];
            } else {
                ctx.symbols[s] = rng.uniform_int(1, config_.size_max);
            }
        }
        // Pass 2: loop/index/free symbols — keep the parent's value clamped
        // into the bound the *mutated* sizes allow, or redraw.
        for (const auto& s : constraints.free_symbols) {
            if (constraints.size_symbols.count(s)) continue;
            std::int64_t v = 0;
            const bool have = parent_symbol(s, v);
            const bool keep = have && !rng.chance(0.5);
            auto lit = constraints.loop_ranges.find(s);
            if (lit != constraints.loop_ranges.end()) {
                ctx.symbols[s] =
                    keep ? std::min(std::max(v, lit->second.lo), lit->second.hi)
                         : rng.uniform_int(lit->second.lo, lit->second.hi);
                continue;
            }
            auto iit = constraints.index_bounds.find(s);
            if (iit != constraints.index_bounds.end()) {
                std::int64_t hi = config_.size_max;
                for (const IndexBound& b : iit->second) {
                    const ir::DataDesc& desc = cutout.container(b.container);
                    if (b.dim < desc.shape.size())
                        hi = std::min(hi, desc.shape[b.dim]->evaluate(ctx.symbols) - 1);
                }
                hi = std::max<std::int64_t>(0, hi);
                ctx.symbols[s] = keep ? std::min(std::max<std::int64_t>(v, 0), hi)
                                      : rng.uniform_int(0, hi);
                continue;
            }
            ctx.symbols[s] = keep ? std::min(std::max<std::int64_t>(v, 0), config_.size_max)
                                  : rng.uniform_int(0, config_.size_max);
        }
    }

    // Input buffers: fresh fill for the mutated shapes (shape symbols may
    // have changed, so parent values cannot be carried over in general; the
    // symbols carry the coverage-relevant structure).
    for (const auto& name : input_config) {
        const ir::DataDesc& desc = cutout.container(name);
        interp::Buffer buf(desc.dtype, desc.concrete_shape(ctx.symbols));
        const bool is_float = ir::dtype_is_float(desc.dtype);
        for (std::int64_t i = 0; i < buf.size(); ++i) {
            if (is_float)
                buf.store(i, interp::Value::from_double(
                                 rng.uniform_double(config_.float_lo, config_.float_hi)));
            else
                buf.store(i, interp::Value::from_int(
                                 rng.uniform_int(config_.int_lo, config_.int_hi)));
        }
        ctx.buffers.emplace(name, std::move(buf));
    }
    return ctx;
}

}  // namespace ff::core
