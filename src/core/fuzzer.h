// The FuzzyFlow pipeline (Fig. 1): change isolation -> cutout extraction ->
// input minimization -> constraint derivation -> differential fuzzing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/cutout.h"
#include "core/diff_test.h"
#include "core/mincut.h"
#include "core/sampler.h"
#include "transforms/transformation.h"

namespace ff::core {

struct FuzzConfig {
    int max_trials = 100;  ///< "we test each instance ... over 100 trials" (Sec. 6.4)
    /// Worker threads running trials of one instance concurrently, each with
    /// its own DifferentialTester (two interpreters) over a shared plan
    /// cache.  0 = hardware concurrency.  Any value produces byte-identical
    /// FuzzReports: trial inputs are a pure function of (seed, trial index)
    /// and results are aggregated in trial order, so the reported verdict is
    /// always the lowest-indexed failing trial.
    int num_threads = 1;
    SamplerConfig sampler;
    DiffConfig diff;
    CutoutOptions cutout;
    /// Run the minimum input-flow cut (Sec. 4) after extraction.
    bool use_mincut = true;
    /// Baseline mode: skip extraction and test on the whole program
    /// ("traditional approach" in the paper's comparisons).
    bool whole_program = false;
    /// When non-empty, failing trials dump a reproducer JSON here.
    std::string artifact_dir;
};

struct FuzzReport {
    std::string transformation;
    std::string match_description;
    Verdict verdict = Verdict::Pass;
    int trials = 0;            ///< differential trials executed
    int uninteresting = 0;     ///< resampled trials (original rejected input)
    int threads = 1;           ///< worker threads that ran the trials
    double seconds = 0.0;      ///< wall-clock, whole instance
    /// End-to-end executed-trial throughput of this instance — resampled
    /// (uninteresting) trials included, since each runs the original
    /// program; the metric the compiled tasklet engine exists to maximize.
    /// Wall-clock based: under concurrency this is aggregate throughput of
    /// the whole pool, never a sum of per-thread rates.
    double trials_per_second = 0.0;
    std::string detail;
    std::string artifact_path;

    // Cutout metrics.
    std::size_t cutout_nodes = 0;
    std::size_t program_nodes = 0;
    std::int64_t input_volume = 0;                ///< elements, after minimization
    std::int64_t input_volume_before_mincut = 0;  ///< elements
    bool mincut_improved = false;
    bool whole_program_cutout = false;

    bool failed() const {
        return verdict != Verdict::Pass && verdict != Verdict::Uninteresting;
    }
};

class Fuzzer {
public:
    explicit Fuzzer(FuzzConfig config = {}) : config_(config) {}

    const FuzzConfig& config() const { return config_; }
    FuzzConfig& config() { return config_; }

    /// Tests one transformation instance on program `p` (p is not mutated;
    /// the transformation is applied to the extracted cutout).
    FuzzReport test_instance(const ir::SDFG& p, const xform::Transformation& transformation,
                             const xform::Match& match);

    /// Tests every instance of every pass; the Sec. 6.3 audit loop.
    std::vector<FuzzReport> audit(const ir::SDFG& p,
                                  const std::vector<xform::TransformationPtr>& passes);

private:
    FuzzConfig config_;
};

}  // namespace ff::core
