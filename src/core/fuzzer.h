// The FuzzyFlow pipeline (Fig. 1): change isolation -> cutout extraction ->
// input minimization -> constraint derivation -> differential fuzzing.
//
// Execution model (see docs/ARCHITECTURE.md): audit() prepares every
// transformation instance, then drains one global queue of (instance, trial)
// units with a fixed pool of workers.  Workers lazily acquire a per-instance
// execution context (two interpreters + scratch) from a bounded context
// cache; per-instance plan caches are managed by a bounded registry.  Trial
// inputs are a pure function of (seed, trial index) and per-instance results
// are merged in canonical trial order, so reports are byte-identical at any
// worker count.
#pragma once

/// \file
/// Differential fuzzer (core::Fuzzer): instance preparation and the
/// audit-wide (instance, trial) scheduler.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cutout.h"
#include "core/diff_test.h"
#include "feedback/corpus.h"
#include "core/mincut.h"
#include "core/sampler.h"
#include "transforms/transformation.h"

namespace ff::core {

struct TrialRecord;  // report.h

/// Configuration of one fuzzing run (a single instance or a whole audit).
struct FuzzConfig {
    int max_trials = 100;  ///< "we test each instance ... over 100 trials" (Sec. 6.4)
    /// Workers of the audit-wide trial pool (and of the audit prepare
    /// phase, which fans cutout extraction / min-cut / constraint
    /// derivation of independent instances over the same count).  One pool
    /// serves the whole audit: workers drain a global queue of (instance,
    /// trial) units, so trials of independent instances overlap and there
    /// is no join barrier between instances.  0 = hardware concurrency.
    /// Any value produces
    /// byte-identical FuzzReports: trial inputs are a pure function of
    /// (seed, trial index) and per-instance results are merged in canonical
    /// instance x trial order, so the reported verdict is always the
    /// lowest-indexed failing trial of each instance.
    int num_threads = 1;
    /// Consecutive trials of one instance claimed per scheduler operation.
    /// Larger chunks cost one atomic claim per `trial_chunk` trials and keep
    /// workers on one instance longer (fewer context rebinds); 1 reproduces
    /// per-trial claiming.  Determinism is unaffected.  Values < 1 clamp
    /// to 1.
    int trial_chunk = 1;
    /// Idle execution contexts (two interpreters + scratch each) the
    /// audit-wide context cache retains; contexts in flight on a worker are
    /// not counted.  Smaller bounds trade interpreter-reuse hits for memory;
    /// eviction only ever destroys idle contexts, never running ones.
    /// 0 = one per worker.
    int context_cache_bound = 0;
    /// Retired per-instance plan caches (compiled state plans + tasklet
    /// bytecode) kept resident after the scheduler's cursor passes their
    /// instance.  Bounds audit memory to O(bound) instances' artifacts; a
    /// straggler that rebinds to an evicted instance transparently rebuilds.
    int plan_cache_bound = 4;
    SamplerConfig sampler;  ///< Input-configuration sampling (Sec. 5.1).
    DiffConfig diff;        ///< Comparison threshold + interpreter settings.
    CutoutOptions cutout;   ///< Cutout extraction options (Sec. 3).
    /// Run the minimum input-flow cut (Sec. 4) after extraction.
    bool use_mincut = true;
    /// Baseline mode: skip extraction and test on the whole program
    /// ("traditional approach" in the paper's comparisons).
    bool whole_program = false;
    /// Instrument original-side def-use coverage (src/feedback): reports
    /// gain pairs_total/pairs_hit and records carry coverage words.  Charged
    /// identically by every execution tier, so reports stay byte-identical.
    bool coverage = false;
    /// Coverage-guided trial generation (implies `coverage`): generation N
    /// deterministically mutates the corpus derived from generations < N
    /// (see core/guided.h).  Reports and corpora remain pure functions of
    /// the prepared job — byte-identical at any thread/shard count
    /// (docs/ARCHITECTURE.md clause 10).
    bool feedback = false;
    /// Trials per feedback generation (values < 1 clamp to 1).
    int generation_size = 25;
    /// When non-empty, failing trials dump a reproducer JSON here.
    std::string artifact_dir;
};

/// Result of fuzzing one transformation instance.
struct FuzzReport {
    std::string transformation;     ///< Transformation name.
    std::string match_description;  ///< Which match was tested.
    Verdict verdict = Verdict::Pass;  ///< Lowest-indexed failing trial's verdict.
    int trials = 0;            ///< differential trials executed
    int uninteresting = 0;     ///< resampled trials (original rejected input)
    int threads = 1;           ///< workers of the pool that ran the trials
    /// Wall-clock seconds: instance setup plus the span from the instance's
    /// first claimed trial to its last completed one.  Under the audit-wide
    /// scheduler instances overlap, so per-instance seconds sum to more than
    /// the audit's wall time.
    double seconds = 0.0;
    /// End-to-end executed-trial throughput of this instance — resampled
    /// (uninteresting) trials included, since each runs the original
    /// program; the metric the compiled tasklet engine exists to maximize.
    /// Wall-clock based: under concurrency this is aggregate throughput of
    /// the whole pool, never a sum of per-thread rates.
    double trials_per_second = 0.0;
    std::string detail;         ///< Failure detail of the reported verdict.
    /// Per-side execution cost summed over the counted trials (canonical
    /// merge order, stopping at the first failure like `trials`).  A pure
    /// function of the prepared job, so shard/thread counts never change it
    /// — the first concrete surface of performance-differential verdicts.
    std::int64_t original_points = 0;
    std::int64_t original_instructions = 0;
    std::int64_t transformed_points = 0;
    std::int64_t transformed_instructions = 0;
    /// Def-use coverage of this instance (zero unless the job enabled
    /// coverage): total pairs in the cutout's atlas, distinct pairs hit by
    /// the counted trials (union over the canonical merge, stopping at the
    /// lowest failure like `trials`), and corpus entries derived for the
    /// instance.  All three are pure functions of the prepared job —
    /// byte-identical at any thread/shard/worker count (docs/ARCHITECTURE.md
    /// clause 10).
    std::int64_t pairs_total = 0;
    std::int64_t pairs_hit = 0;
    std::int64_t corpus_size = 0;
    std::string artifact_path;  ///< Saved reproducer (failing instances only).
    /// Why writing the reproducer artifact failed (empty on success or when
    /// no artifact was due).  A failing instance with a configured
    /// `artifact_dir` but an empty `artifact_path` always carries the I/O
    /// error here; the audit table sums these per transformation.
    std::string artifact_error;

    // Cutout metrics.
    std::size_t cutout_nodes = 0;   ///< Dataflow nodes in the cutout.
    std::size_t program_nodes = 0;  ///< Dataflow nodes in the full program.
    std::int64_t input_volume = 0;                ///< elements, after minimization
    std::int64_t input_volume_before_mincut = 0;  ///< elements
    bool mincut_improved = false;        ///< Whether the min cut shrank inputs.
    bool whole_program_cutout = false;   ///< Extraction fell back to whole program.

    /// Whether this instance found a bug (any verdict besides Pass /
    /// Uninteresting).
    bool failed() const {
        return verdict != Verdict::Pass && verdict != Verdict::Uninteresting;
    }
};

/// Counters of the audit-wide scheduler, reset by every audit() /
/// test_instance() call.  `workers` is deterministic; every other field can
/// depend on thread timing (e.g. `units` varies with how many in-flight
/// trials past a failure still ran) — they exist for benchmarks, tuning
/// (docs/TUNING.md) and the eviction tests, and only become run-to-run
/// stable at one worker or on failure-free audits.
struct SchedulerStats {
    int workers = 0;             ///< Pool size after clamping to the unit count.
    std::int64_t units = 0;      ///< (instance, trial) units executed.
    std::int64_t claims = 0;     ///< Scheduler claim operations (chunked).
    int contexts_built = 0;      ///< Execution contexts constructed.
    int context_hits = 0;        ///< Cache hits already bound to the instance.
    int context_rebinds = 0;     ///< Idle contexts rebound to a new instance.
    int context_evictions = 0;   ///< Idle contexts destroyed over the bound.
    std::int64_t plan_caches_evicted = 0;  ///< Registry evictions (see plan_cache.h).
    /// Wall clock of the prepare phase (cutout, min-cut, transformation
    /// application, constraint derivation across all instances; audit()
    /// fans it over the worker pool).  Deterministic in outcome, not value.
    double prepare_seconds = 0.0;
    /// Specialization counters summed over every per-instance plan cache of
    /// the run: how many scopes/tasklets classified into the flat-stride /
    /// untagged-f64 tiers and how the kernel launches went (see
    /// interp::SpecStats and docs/TUNING.md).  Plan-time fields are
    /// deterministic; launch counters scale with executed trials.
    interp::SpecStats spec;
};

/// A prepared audit whose trial units can be executed in arbitrary
/// sub-ranges of the global unit space — the entry point cross-process
/// sharding (src/shard) builds on.
///
/// Preparation (match discovery + the per-instance cutout pipelines) is a
/// pure function of `(program, passes, config)`, so two processes that
/// prepare the same job agree on the canonical instance indexing and on the
/// flat unit space `unit = instance * max_trials + trial`.  A shard then
/// executes any contiguous unit range with run_range(); a merger injects
/// records produced elsewhere with set_record(); finalize() performs the
/// canonical-order merge and artifact saving either way.  `Fuzzer::audit`
/// itself is prepare + run_range(0, unit_count()) + finalize().
///
/// run_range() may be called repeatedly (the shard runner executes one
/// checkpoint chunk per call); execution contexts and plan caches persist
/// across calls.  Determinism contract (docs/ARCHITECTURE.md): for a fixed
/// prepared job, the records of every executed unit are byte-identical
/// regardless of how the unit space is cut into ranges, processes, or
/// worker threads.
class PreparedAudit {
public:
    PreparedAudit();   ///< Empty audit (0 instances) — assign over it.
    ~PreparedAudit();  ///< Releases jobs, caches and contexts.
    PreparedAudit(PreparedAudit&&) noexcept;             ///< Movable,
    PreparedAudit& operator=(PreparedAudit&&) noexcept;  ///< not copyable.

    /// Prepared instances, in canonical (match-discovery) order.
    std::size_t instance_count() const;
    /// Trials per instance (= FuzzConfig::max_trials at prepare time).
    int max_trials() const;
    /// Size of the flat unit space: instance_count() * max_trials().
    std::int64_t unit_count() const;

    /// Whether instance `i` has trial units to run (false when the
    /// transformation failed to apply — its report is already final and its
    /// units are skipped by every scheduler).
    bool instance_runnable(std::size_t instance) const;

    /// The instance's report as of preparation (final for non-runnable
    /// instances, partial otherwise — finalize() completes it).
    const FuzzReport& prepared_report(std::size_t instance) const;

    /// Executes every unit in [unit_begin, unit_end) with the configured
    /// worker pool, recording outcomes into the per-instance trial slots.
    /// Failures early-stop later trials of the same instance (including
    /// across subsequent run_range calls); slots past a failure may stay
    /// NotRun — the merge never reads them.
    void run_range(std::int64_t unit_begin, std::int64_t unit_end);

    /// Trial slots of instance `i` (empty for non-runnable instances).
    const std::vector<TrialRecord>& records(std::size_t instance) const;

    /// Injects a record produced elsewhere (a shard merger) at flat unit
    /// index `unit`.  Ignored for units of non-runnable instances, whose
    /// reports are final from preparation.
    void set_record(std::int64_t unit, TrialRecord record);

    /// Canonical-order merge of every instance's slots into its FuzzReport
    /// (core::merge_trial_records), saving reproducer artifacts when the
    /// prepare-time config set `artifact_dir`.  Call once, after all
    /// execution/injection.
    std::vector<FuzzReport> finalize();

    /// Scheduler counters accumulated over every run_range() call.
    const SchedulerStats& stats() const;

    /// The audit's merged corpus: every instance's feedback corpus entries
    /// concatenated in canonical (instance, trial) order.  Empty unless the
    /// prepare-time config enabled `feedback`; call after finalize() (which
    /// completes each instance's corpus derivation).  A pure function of the
    /// prepared job — byte-identical across shard/thread counts.
    std::vector<feedback::CorpusEntry> corpus() const;

private:
    friend class Fuzzer;
    struct Impl;
    std::unique_ptr<Impl> impl_;  ///< Prepared jobs + persistent caches.
};

/// Differential fuzzer: tests transformation instances (Sec. 5) and audits
/// whole pass pipelines (Sec. 6.3) over the audit-wide scheduler.
class Fuzzer {
public:
    /// Fuzzer with the given configuration.
    explicit Fuzzer(FuzzConfig config = {}) : config_(config) {}

    /// Current configuration (read-only).
    const FuzzConfig& config() const { return config_; }
    /// Current configuration (mutable; applies to subsequent calls).
    FuzzConfig& config() { return config_; }

    /// Tests one transformation instance on program `p` (p is not mutated;
    /// the transformation is applied to the extracted cutout).  Runs the
    /// same scheduler as audit(), over a single instance's trials.
    FuzzReport test_instance(const ir::SDFG& p, const xform::Transformation& transformation,
                             const xform::Match& match);

    /// Tests every instance of every pass; the Sec. 6.3 audit loop.  All
    /// instances are prepared first (cutout, min-cut, transformation,
    /// constraints — sequential, deterministic order), then one worker pool
    /// drains every (instance, trial) unit.  Reports come back in instance
    /// order and are byte-identical at any num_threads.
    std::vector<FuzzReport> audit(const ir::SDFG& p,
                                  const std::vector<xform::TransformationPtr>& passes);

    /// Runs only the prepare phase of audit() and hands back the prepared
    /// instances for ranged unit execution (see PreparedAudit) — the
    /// cross-process sharding entry point.  The returned audit captures the
    /// current config; later config changes do not affect it.
    PreparedAudit prepare(const ir::SDFG& p,
                          const std::vector<xform::TransformationPtr>& passes);

    /// Scheduler counters of the last audit()/test_instance() call.
    const SchedulerStats& last_stats() const { return stats_; }

private:
    FuzzConfig config_;    ///< Active configuration.
    SchedulerStats stats_;  ///< Counters of the last run.
};

}  // namespace ff::core
