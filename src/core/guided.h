// Coverage-guided, generation-scheduled trial generation (ROADMAP
// "Feedback-guided trial generation").
//
// The flat trial space of one instance is partitioned into generations of
// `generation_size` consecutive trials.  Generation 0 draws exactly today's
// pure (seed, trial) samples; generation N draws by deterministically
// mutating parents from the *corpus through generation N-1* — the trials
// whose original-side coverage added new def-use pairs when scanned in
// canonical ascending order (see feedback/corpus.h).  Every draw is a pure
// function of (sampler seed, trial index, corpus digest through the
// previous generation), and the corpus itself is a pure function of the
// job, so guided scheduling preserves byte-identical reports and corpora at
// any thread, shard or worker count (docs/ARCHITECTURE.md clause 10).
//
// The generation barrier is *derivational*, not an execution barrier: a
// worker (or shard) that needs generation N inputs before earlier trials
// ran locally derives the missing coverage itself, by re-executing the
// original side of those trials under a private coverage-instrumented
// interpreter — the same bitmaps any other process records (tier
// invariance), so shards never need to communicate mid-run.  Coverage
// donated by trials executed in-process (note_trial) makes that re-execution
// the cold path.
#pragma once

/// \file
/// InstanceFeedback: per-instance corpus derivation, deterministic
/// generation-scheduled sampling, and the coverage counters reports carry.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "core/constraints.h"
#include "core/sampler.h"
#include "feedback/corpus.h"
#include "feedback/coverage.h"
#include "interp/interpreter.h"

namespace ff::core {

/// Per-instance feedback state: the canonical corpus scan, the parent pool
/// mutations draw from, and the private interpreter that fills coverage
/// gaps.  Thread-safe; every operation serializes on one instance-local
/// mutex (operations are per-trial, not per-point).
class InstanceFeedback {
public:
    /// `original`, `input_config`, `constraints` and `sampler` are captured
    /// by reference and must outlive this object (they live in the prepared
    /// instance job).  `exec` configures the private derivation interpreter
    /// and must match the audit's trial interpreters (with coverage on) so
    /// derived bitmaps equal recorded ones.
    InstanceFeedback(const ir::SDFG& original, const std::set<std::string>& input_config,
                     const Constraints& constraints, const InputSampler& sampler,
                     interp::ExecConfig exec, int generation_size, std::int64_t instance);

    /// The guided input configuration of `trial`: generation 0 (or an empty
    /// parent pool) falls back to the sampler's pure (seed, trial) draw;
    /// otherwise a deterministic mutation of a corpus parent.  Derives the
    /// corpus through the previous generation first (see class comment).
    /// Throws what InputSampler::sample throws (unresolvable shapes); the
    /// caller records the trial as uninteresting.
    interp::Context sample_trial(std::int64_t trial);

    /// Donates an executed trial's original-side coverage (empty when the
    /// original rejected the input) so the corpus scan can skip re-deriving
    /// it.  Idempotent; donations for already-scanned trials are ignored.
    void note_trial(std::int64_t trial, const std::vector<std::uint64_t>& coverage);

    /// Advances the corpus scan through the first `trial_limit` trials
    /// (re-executing any trial without a donation).  finalize calls this
    /// with the instance's full trial count before reading the corpus.
    void derive_through(std::int64_t trial_limit);

    /// Corpus entries derived so far (canonical ascending-trial order).
    std::vector<feedback::CorpusEntry> entries() const;

    /// Total def-use pairs of the instance's atlas.
    std::uint32_t pair_count() const;

private:
    /// Records generation-boundary snapshots the scan has reached.  Caller
    /// holds mutex_.
    void sync_boundaries();
    /// One step of the canonical corpus scan (trial == scanned_).  Caller
    /// holds mutex_.
    void scan_one();
    /// The guided draw of `trial`; requires the boundary snapshot of its
    /// generation.  Caller holds mutex_.
    interp::Context draw(std::int64_t trial) const;
    /// Original-side coverage of `trial` with inputs `ctx`: the donation if
    /// one exists, else a re-execution under the private interpreter.
    /// Caller holds mutex_.
    std::vector<std::uint64_t> coverage_of(std::int64_t trial, const interp::Context& ctx);

    const ir::SDFG& original_;
    const std::set<std::string>& input_config_;
    const Constraints& constraints_;
    const InputSampler& sampler_;
    const int generation_size_;
    const std::int64_t instance_;

    mutable std::mutex mutex_;
    interp::Interpreter interp_;  ///< Private derivation interpreter.
    std::shared_ptr<const feedback::CovAtlas> atlas_;
    feedback::CoverageMap run_map_;  ///< Scratch bitmap for re-executions.
    feedback::CoverageMap cum_map_;  ///< Cumulative map of the corpus scan.
    std::int64_t scanned_ = 0;       ///< Trials folded into the scan so far.
    std::uint32_t digest_ = 0;       ///< Rolling digest over entries_.
    /// Snapshot per generation g: (digest, entry count) of the corpus
    /// through generation g-1 — what generation g's draws are parameterized
    /// by.  boundary_[0] == (0, 0).
    std::vector<std::pair<std::uint32_t, std::size_t>> boundary_;
    std::vector<feedback::CorpusEntry> entries_;  ///< Canonical corpus so far.
    std::vector<interp::Context> parents_;        ///< entries_[i]'s exact inputs.
    /// Donated coverage by trial index (empty vector = ran, no coverage).
    std::map<std::int64_t, std::vector<std::uint64_t>> donated_;
};

}  // namespace ff::core
