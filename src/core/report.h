// Reporting helpers: aligned text tables and audit aggregation (the shape
// of Table 2 and the per-case-study summaries).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/fuzzer.h"

namespace ff::core {

/// Simple monospace table with per-column alignment.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);
    std::string to_string() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Per-transformation aggregate of an audit run.
struct AuditSummary {
    std::string transformation;
    int instances = 0;
    int failures = 0;
    /// Verdict name -> count among failures.
    std::map<std::string, int> categories;
    double total_seconds = 0.0;
    int total_trials = 0;
    int total_uninteresting = 0;
    /// Worker threads used (max across instances; they share one config).
    int threads = 1;

    /// Aggregate executed-trial throughput across instances (resampled
    /// trials included — they run the original program too); matches
    /// FuzzReport::trials_per_second.
    double trials_per_second() const {
        return total_seconds > 0.0 ? (total_trials + total_uninteresting) / total_seconds : 0.0;
    }
};

std::vector<AuditSummary> summarize_audit(const std::vector<FuzzReport>& reports);

/// Renders the Table 2-style summary.
std::string audit_table(const std::vector<AuditSummary>& summaries);

}  // namespace ff::core
