// Reporting helpers: per-instance trial aggregation slots, aligned text
// tables and audit aggregation (the shape of Table 2 and the per-case-study
// summaries).
#pragma once

/// \file
/// Trial-record slots, the canonical-order merge, and audit report tables.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/fuzzer.h"

namespace ff::core {

/// Outcome slot of one differential trial, recorded at its trial index so
/// the merge can replay the canonical sequential order regardless of which
/// worker (or machine) ran it.  A vector of these, indexed by trial, is the
/// per-instance aggregation surface every scheduler writes into.
struct TrialRecord {
    /// What happened to this trial slot.
    enum class Kind : std::uint8_t {
        NotRun,         ///< Slot never executed (past the first failure).
        Uninteresting,  ///< Original rejected the input; trial resampled.
        Pass,           ///< Both sides agreed.
        Failed,         ///< verdict/detail/inputs describe the failure.
    };
    Kind kind = Kind::NotRun;         ///< Slot state.
    Verdict verdict = Verdict::Pass;  ///< Failure classification (Failed only).
    std::string detail;               ///< Failure detail (Failed only).
    /// Per-side execution cost of the trial (TrialOutcome's counters; zero
    /// for a side that did not complete Ok).  Part of the record wire form
    /// and summed into FuzzReport by the canonical merge — the seed of
    /// performance-differential verdicts.
    std::int64_t original_points = 0;
    std::int64_t original_instructions = 0;
    std::int64_t transformed_points = 0;
    std::int64_t transformed_instructions = 0;
    /// Original-side def-use coverage words (TrialOutcome::coverage; empty
    /// when the job ran without coverage or the slot is not Pass/Failed).
    /// Part of the record wire form (conditional "cov" field, so
    /// coverage-off records keep their exact historical bytes); unioned into
    /// FuzzReport::pairs_hit by the canonical merge.
    std::vector<std::uint64_t> coverage;
    /// Inputs are retained only for failing trials (artifact reproduction).
    std::unique_ptr<interp::Context> inputs;
};

/// Canonical-order merge of one instance's trial slots into its FuzzReport:
/// replays exactly what a sequential trial loop would have counted, stopping
/// at the lowest-indexed failure, and returns that failing record (for
/// reproducer-artifact saving) or nullptr when the instance passed.
///
/// This is the normative half of the determinism contract (see
/// docs/ARCHITECTURE.md): any scheduler — single thread, audit-wide worker
/// pool, or cross-process shards — may fill `records` in any order, as long
/// as every index below the lowest failure is filled; the merged verdict,
/// trial counts and detail are then byte-identical to the sequential run.
const TrialRecord* merge_trial_records(const std::vector<TrialRecord>& records,
                                       FuzzReport& report);

/// Simple monospace table with per-column alignment.
class TextTable {
public:
    /// Table with the given column headers.
    explicit TextTable(std::vector<std::string> header);

    /// Appends a row (padded/truncated to the header width).
    void add_row(std::vector<std::string> cells);

    /// Renders the table with aligned columns.
    std::string to_string() const;

private:
    std::vector<std::string> header_;             ///< Column headers.
    std::vector<std::vector<std::string>> rows_;  ///< Body rows.
};

/// Per-transformation aggregate of an audit run.
struct AuditSummary {
    std::string transformation;  ///< Transformation name.
    int instances = 0;           ///< Matches tested.
    int failures = 0;            ///< Instances with a failing verdict.
    /// Verdict name -> count among failures.
    std::map<std::string, int> categories;
    double total_seconds = 0.0;     ///< Summed per-instance wall-clock.
    int total_trials = 0;           ///< Differential trials executed.
    int total_uninteresting = 0;    ///< Resampled trials.
    /// Instances whose reproducer artifact failed to write (the per-report
    /// details live in FuzzReport::artifact_error).
    int artifact_errors = 0;
    /// Worker threads used (max across instances; they share one config).
    int threads = 1;
    /// Coverage totals over the transformation's instances (all zero when
    /// the audit ran without coverage): def-use pairs enumerated / hit, and
    /// corpus entries derived (see FuzzReport).
    std::int64_t total_pairs = 0;
    std::int64_t total_pairs_hit = 0;
    std::int64_t total_corpus = 0;

    /// Aggregate executed-trial throughput across instances (resampled
    /// trials included — they run the original program too); matches
    /// FuzzReport::trials_per_second.
    double trials_per_second() const {
        return total_seconds > 0.0 ? (total_trials + total_uninteresting) / total_seconds : 0.0;
    }
};

/// Folds per-instance reports into per-transformation summaries (stable
/// first-seen transformation order).
std::vector<AuditSummary> summarize_audit(const std::vector<FuzzReport>& reports);

/// Renders the Table 2-style summary.
std::string audit_table(const std::vector<AuditSummary>& summaries);

}  // namespace ff::core
