#include "core/fuzzer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "core/guided.h"
#include "core/report.h"
#include "core/testcase_io.h"

namespace ff::core {

namespace {

std::size_t count_dataflow_nodes(const ir::SDFG& sdfg) {
    std::size_t n = 0;
    for (ir::StateId sid : sdfg.states()) n += sdfg.state(sid).graph().node_count();
    return n;
}

/// Resolves the config's implication chain (feedback => coverage =>
/// instrumented interpreters) once, so prepare, the tester cache and the
/// per-instance feedback state all see the same effective settings.
FuzzConfig normalized_config(FuzzConfig config) {
    if (config.feedback) config.coverage = true;
    if (config.coverage) config.diff.exec.coverage = true;
    if (config.generation_size < 1) config.generation_size = 1;
    return config;
}

int resolve_thread_count(int requested, std::int64_t available_units) {
    int t = requested;
    if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
    // Never more workers than units (a zero-unit audit needs one worker at
    // most — it exits on its first claim).
    const std::int64_t cap = std::max<std::int64_t>(available_units, 1);
    return static_cast<int>(std::clamp<std::int64_t>(t, 1, cap));
}

/// One prepared transformation instance: the cutout pipeline's output plus
/// everything trial execution writes.  Pinned in a deque (atomics make it
/// immovable; workers index it concurrently).
struct InstanceJob {
    std::size_t index = 0;      ///< Position in the audit (= plan-cache key).
    FuzzReport report;          ///< Filled by prepare, merged by finalize.
    Cutout cutout;              ///< Extracted (possibly min-cut) cutout.
    ir::SDFG transformed;       ///< Cutout with the transformation applied.
    Constraints constraints;    ///< Gray-box sampling constraints.
    InputSampler sampler;       ///< Deterministic (seed, trial) input source.
    ValidationResult validation;  ///< Of `transformed`, computed once.
    std::vector<TrialRecord> records;  ///< Per-trial slots, indexed by trial.
    /// Coverage-guided trial generation state (feedback jobs only); holds
    /// references into this job, which the deque pins in place.
    std::unique_ptr<InstanceFeedback> feedback;
    bool runnable = false;      ///< false: report is final (apply failed).
    double setup_seconds = 0.0;  ///< Cutout + min-cut + apply + constraints.
    /// Trial-phase wall clock: ns offsets from the pool epoch of the first
    /// claimed and last finished unit (CAS min/max, any worker).
    std::atomic<std::int64_t> first_ns{std::numeric_limits<std::int64_t>::max()};
    std::atomic<std::int64_t> last_ns{-1};
};

/// Global (instance, trial) unit queue over one contiguous range of the
/// flat unit space `instance * max_trials + trial`; a single monotonic
/// cursor hands out chunks of consecutive trials of one instance (chunks
/// never straddle an instance boundary).  Monotonicity gives the
/// determinism invariant: every trial with an index <= its instance's
/// lowest failure is guaranteed to execute *within the range*, which is all
/// merge_trial_records needs once every range of the unit space has run
/// somewhere (single process or cross-process shards).  (For uniform
/// micro-tasks like fuzz trials, work stealing degenerates to exactly this
/// single shared queue; per-thread deques would only add overhead — see
/// docs/ARCHITECTURE.md.)
class AuditScheduler {
public:
    /// A claimed run of consecutive trials of one instance.
    struct Claim {
        int instance = 0;  ///< Instance (job) index.
        int first = 0;     ///< First trial index of the run.
        int count = 0;     ///< Number of trials claimed.
    };

    AuditScheduler(std::size_t instances, int max_trials, int chunk, std::int64_t unit_begin,
                   std::int64_t unit_end)
        : max_trials_(std::max(max_trials, 0)),
          chunk_(std::max(chunk, 1)),
          end_(unit_end),
          next_(unit_begin),
          stop_(instances) {
        for (auto& s : stop_) s.store(max_trials_, std::memory_order_relaxed);
    }

    /// Excludes an instance entirely (setup failed); its units are skipped.
    void skip_instance(std::size_t instance) {
        stop_[instance].store(-1, std::memory_order_release);
    }

    /// Claims the next chunk; false when the range is drained (or aborted).
    bool claim(Claim& c) {
        std::int64_t u = next_.load(std::memory_order_relaxed);
        for (;;) {
            if (aborted_.load(std::memory_order_acquire)) return false;
            if (u >= end_) return false;
            const int inst = static_cast<int>(u / max_trials_);
            const int first = static_cast<int>(u % max_trials_);
            if (first > stop_at(static_cast<std::size_t>(inst))) {
                // Everything left in this instance is past its stop index:
                // jump the cursor to the next instance's first unit.
                const std::int64_t next_inst =
                    (static_cast<std::int64_t>(inst) + 1) * max_trials_;
                if (next_.compare_exchange_weak(u, next_inst, std::memory_order_acq_rel))
                    u = next_inst;
                continue;
            }
            const int count = static_cast<int>(std::min<std::int64_t>(
                std::min(chunk_, max_trials_ - first), end_ - u));
            if (next_.compare_exchange_weak(u, u + count, std::memory_order_acq_rel)) {
                c = Claim{inst, first, count};
                return true;
            }
        }
    }

    /// Records a failure; later trials of that instance stop being claimed.
    void fail_at(std::size_t instance, int trial) {
        auto& stop = stop_[instance];
        int cur = stop.load(std::memory_order_acquire);
        while (trial < cur &&
               !stop.compare_exchange_weak(cur, trial, std::memory_order_acq_rel)) {
        }
    }

    /// Current stop index of `instance` (trials above it are irrelevant).
    int stop_at(std::size_t instance) const {
        return stop_[instance].load(std::memory_order_acquire);
    }

    /// Instance the cursor currently points into: all lower instances are
    /// fully claimed (workers retire their plan caches past this watermark).
    int cursor_instance() const {
        if (max_trials_ == 0) return 0;
        return static_cast<int>(next_.load(std::memory_order_acquire) / max_trials_);
    }

    /// Stops all further claims (a worker raised).
    void abort() { aborted_.store(true, std::memory_order_release); }

    /// Whether abort() was called (workers also poll this inside a claimed
    /// chunk so a large trial_chunk cannot delay error propagation).
    bool aborted() const { return aborted_.load(std::memory_order_acquire); }

private:
    const int max_trials_;
    const int chunk_;
    const std::int64_t end_;  // one past the last unit of the range
    std::atomic<std::int64_t> next_;
    std::atomic<bool> aborted_{false};
    std::vector<std::atomic<int>> stop_;  // per-instance early-stop index
};

/// Everything the worker pool shares for one run.
struct PoolShared {
    PoolShared(std::deque<InstanceJob>& j, AuditScheduler& s, TesterCache& c,
               interp::PlanCacheRegistry& r)
        : jobs(j), scheduler(s), cache(c), registry(r) {}

    std::deque<InstanceJob>& jobs;
    AuditScheduler& scheduler;
    TesterCache& cache;
    interp::PlanCacheRegistry& registry;
    std::chrono::steady_clock::time_point epoch{};
    std::atomic<int> retire_watermark{0};
    std::atomic<std::int64_t> units{0};
    std::atomic<std::int64_t> claims{0};
    std::exception_ptr error;
    std::mutex error_mutex;
};

std::int64_t ns_since(std::chrono::steady_clock::time_point epoch) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

void atomic_store_min(std::atomic<std::int64_t>& a, std::int64_t v) {
    std::int64_t cur = a.load(std::memory_order_relaxed);
    while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
    }
}

void atomic_store_max(std::atomic<std::int64_t>& a, std::int64_t v) {
    std::int64_t cur = a.load(std::memory_order_relaxed);
    while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_acq_rel)) {
    }
}

/// Retires the plan caches of every instance below the scheduler cursor:
/// once the cursor is past an instance, no new claims (and thus no new
/// context binds) for it can occur, so its compiled artifacts are only kept
/// alive by in-flight stragglers and the bounded registry/context caches.
void advance_retire_watermark(PoolShared& sh, int cursor_instance) {
    int w = sh.retire_watermark.load(std::memory_order_acquire);
    while (w < cursor_instance) {
        if (sh.retire_watermark.compare_exchange_weak(w, cursor_instance,
                                                      std::memory_order_acq_rel)) {
            for (int i = w; i < cursor_instance; ++i)
                sh.registry.retire(static_cast<std::uint64_t>(i));
            return;
        }
    }
}

/// Runs one (instance, trial) unit: sample inputs, differential-execute,
/// record the outcome in the instance's trial slot.
void run_unit(InstanceJob& job, int trial, DifferentialTester& tester,
              AuditScheduler& scheduler) {
    TrialRecord& rec = job.records[static_cast<std::size_t>(trial)];
    interp::Context inputs;
    try {
        // Guided jobs draw from the feedback scheduler (a pure function of
        // the prepared job, like the plain sampler path).
        inputs = job.feedback ? job.feedback->sample_trial(trial)
                              : job.sampler.sample(job.cutout.program, job.cutout.input_config,
                                                   job.constraints,
                                                   static_cast<std::uint64_t>(trial));
    } catch (const std::exception&) {
        rec.kind = TrialRecord::Kind::Uninteresting;  // unresolvable shapes
        if (job.feedback) job.feedback->note_trial(trial, {});
        return;
    }
    const TrialOutcome outcome = tester.run_trial(inputs);
    // Donate the original-side coverage so corpus derivation at finalize
    // does not have to re-execute this trial.
    if (job.feedback) job.feedback->note_trial(trial, outcome.coverage);
    rec.coverage = outcome.coverage;
    rec.original_points = outcome.original_points;
    rec.original_instructions = outcome.original_instructions;
    rec.transformed_points = outcome.transformed_points;
    rec.transformed_instructions = outcome.transformed_instructions;
    if (outcome.verdict == Verdict::Uninteresting) {
        rec.kind = TrialRecord::Kind::Uninteresting;
        return;
    }
    if (outcome.verdict == Verdict::Pass) {
        rec.kind = TrialRecord::Kind::Pass;
        return;
    }
    rec.verdict = outcome.verdict;
    rec.detail = outcome.detail;
    rec.inputs = std::make_unique<interp::Context>(std::move(inputs));
    rec.kind = TrialRecord::Kind::Failed;
    scheduler.fail_at(job.index, trial);
}

/// One worker of the audit-wide pool: claims unit chunks off the global
/// queue, lazily (re)binding its execution context when the chunk belongs to
/// a different instance than the previous one.
void run_worker(PoolShared& sh) {
    std::unique_ptr<DifferentialTester> tester;
    std::size_t bound_instance = std::numeric_limits<std::size_t>::max();
    try {
        AuditScheduler::Claim c;
        while (sh.scheduler.claim(c)) {
            sh.claims.fetch_add(1, std::memory_order_relaxed);
            // Retire only instances strictly below the claimed one — the
            // cursor may already be past c.instance (this claim could be its
            // last), and retiring it before binding would evict the very
            // plan cache the bind below is about to acquire.
            advance_retire_watermark(sh, c.instance);
            InstanceJob& job = sh.jobs[static_cast<std::size_t>(c.instance)];
            // Stamp before the context (re)bind so plan building counts
            // toward the instance's trial-phase wall clock.
            atomic_store_min(job.first_ns, ns_since(sh.epoch));
            if (static_cast<std::size_t>(c.instance) != bound_instance) {
                if (tester) sh.cache.release(std::move(tester), bound_instance);
                tester = sh.cache.acquire(job.index, [&job, &sh](DifferentialTester& t) {
                    t.bind(job.cutout.program, job.transformed, job.cutout.system_state,
                           sh.registry.acquire(job.index), &job.validation);
                });
                bound_instance = static_cast<std::size_t>(c.instance);
            }
            for (int trial = c.first; trial < c.first + c.count; ++trial) {
                // A failure below this chunk (or another worker's abort)
                // may have landed meanwhile; the remaining trials' records
                // would never be read.
                if (sh.scheduler.aborted() || trial > sh.scheduler.stop_at(job.index)) break;
                run_unit(job, trial, *tester, sh.scheduler);
                sh.units.fetch_add(1, std::memory_order_relaxed);
            }
            atomic_store_max(job.last_ns, ns_since(sh.epoch));
        }
    } catch (...) {
        std::lock_guard<std::mutex> lock(sh.error_mutex);
        if (!sh.error) sh.error = std::current_exception();
        sh.scheduler.abort();
    }
    if (tester) sh.cache.release(std::move(tester), bound_instance);
}

/// Steps 1-4 of the pipeline for one instance: isolation, extraction,
/// min-cut, transformation application, plus constraint derivation and
/// validation.  On failure to apply, the job's report is final and the job
/// is marked not runnable.
void prepare_instance(const FuzzConfig& config, const ir::SDFG& p,
                      const xform::Transformation& transformation, const xform::Match& match,
                      InstanceJob& job) {
    const auto t0 = std::chrono::steady_clock::now();
    FuzzReport& report = job.report;
    report.transformation = transformation.name();
    report.match_description = match.description;
    report.program_nodes = count_dataflow_nodes(p);

    // 1-2. Change isolation (white-box) and cutout extraction.
    if (config.whole_program) {
        job.cutout = whole_program_cutout(p);
    } else {
        const xform::ChangeSet delta = transformation.affected_nodes(p, match);
        job.cutout = extract_cutout(p, delta, config.cutout);
        report.input_volume_before_mincut =
            job.cutout.concrete_input_volume(config.cutout.defaults);

        // 3. Minimum input-flow cut.
        if (config.use_mincut && !job.cutout.whole_program) {
            MinCutResult mc = minimize_input_configuration(p, delta, job.cutout, config.cutout);
            report.mincut_improved = mc.improved;
            job.cutout = std::move(mc.cutout);
        }
    }
    report.whole_program_cutout = job.cutout.whole_program;
    report.cutout_nodes = count_dataflow_nodes(job.cutout.program);
    report.input_volume = job.cutout.concrete_input_volume(config.cutout.defaults);
    if (report.input_volume_before_mincut == 0)
        report.input_volume_before_mincut = report.input_volume;

    // 4. Apply the transformation to (a copy of) the cutout.
    job.transformed = job.cutout.program;
    try {
        const xform::Match cutout_match = job.cutout.remap_match(match);
        transformation.apply(job.transformed, cutout_match);
    } catch (const std::exception& e) {
        report.verdict = Verdict::InvalidCode;
        report.detail = std::string("apply failed: ") + e.what();
        report.seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        return;  // job.runnable stays false; the report is final
    }

    // 5. Gray-box constraints; validation happens once here so every
    // execution context that binds this instance reuses the result instead
    // of re-walking the same immutable graph.
    job.constraints = derive_constraints(p, job.cutout.program);
    job.sampler = InputSampler(config.sampler);
    job.validation = ValidationResult::of(job.transformed);
    job.records.resize(static_cast<std::size_t>(std::max(config.max_trials, 0)));
    if (config.feedback) {
        // The feedback state captures references into this job (pinned in
        // the audit's deque) and runs its private derivation interpreter
        // with the same exec settings the trial testers use.
        job.feedback = std::make_unique<InstanceFeedback>(
            job.cutout.program, job.cutout.input_config, job.constraints, job.sampler,
            config.diff.exec, config.generation_size, static_cast<std::int64_t>(job.index));
    }
    job.runnable = true;
    job.setup_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Merges one instance's trial slots into its report (canonical order, see
/// report.h), saves the reproducer artifact for failing instances, and
/// derives the wall-clock metrics.
void finalize_instance(const FuzzConfig& config, InstanceJob& job) {
    if (!job.runnable) return;  // report already final (apply failed)
    FuzzReport& report = job.report;
    const TrialRecord* failing = merge_trial_records(job.records, report);
    if (config.coverage)
        report.pairs_total = job.feedback
                                 ? static_cast<std::int64_t>(job.feedback->pair_count())
                                 : static_cast<std::int64_t>(
                                       feedback::CovAtlas::build(job.cutout.program).pair_count());
    if (job.feedback) {
        // Complete the canonical corpus scan over the full trial space:
        // donate every executed slot's coverage (empty = ran, no coverage),
        // then derive the gaps (slots other shards ran, or slots early-stop
        // skipped) by re-execution — shard- and thread-invariant by
        // construction (docs/ARCHITECTURE.md clause 10).
        for (std::size_t t = 0; t < job.records.size(); ++t) {
            const TrialRecord& rec = job.records[t];
            if (rec.kind == TrialRecord::Kind::NotRun) continue;
            job.feedback->note_trial(static_cast<std::int64_t>(t), rec.coverage);
        }
        job.feedback->derive_through(static_cast<std::int64_t>(job.records.size()));
        report.corpus_size = static_cast<std::int64_t>(job.feedback->entries().size());
    }
    if (failing && !config.artifact_dir.empty()) {
        if (failing->inputs)
            report.artifact_path =
                save_testcase_artifact(config.artifact_dir, job.cutout, job.transformed,
                                       *failing->inputs, report, &report.artifact_error);
        else  // unreachable for records this process executed
            report.artifact_error = "failing record carries no inputs; no artifact saved";
    }
    const std::int64_t first = job.first_ns.load(std::memory_order_relaxed);
    const std::int64_t last = job.last_ns.load(std::memory_order_relaxed);
    const double trial_seconds =
        last >= 0 && first <= last ? static_cast<double>(last - first) * 1e-9 : 0.0;
    report.seconds = job.setup_seconds + trial_seconds;
    const int executed = report.trials + report.uninteresting;
    if (report.seconds > 0.0 && executed > 0)
        report.trials_per_second = executed / report.seconds;
}

}  // namespace

/// Prepared jobs plus everything that persists across run_range calls: the
/// bounded context/plan caches (so a chunked shard run reuses warm
/// interpreters between checkpoints) and the accumulated scheduler stats.
struct PreparedAudit::Impl {
    FuzzConfig config;              ///< Captured at prepare time.
    std::deque<InstanceJob> jobs;   ///< Pinned (atomics make them immovable).
    SchedulerStats stats;           ///< Accumulated over run_range calls.
    std::unique_ptr<interp::PlanCacheRegistry> registry;  ///< Lazily built.
    std::unique_ptr<TesterCache> cache;                   ///< Lazily built.
    std::chrono::steady_clock::time_point epoch;  ///< Trial wall-clock base.
    /// Lowest known failing trial per instance (max_trials = none): seeds
    /// the scheduler's early-stop across run_range calls and set_record
    /// injections.
    std::vector<int> lowest_failure;

    int max_trials() const { return std::max(config.max_trials, 0); }
    std::int64_t unit_count() const {
        return static_cast<std::int64_t>(jobs.size()) * max_trials();
    }

    void run_range(std::int64_t begin, std::int64_t end);
    void note_failures(std::int64_t begin, std::int64_t end);
};

/// Executes every unit of [begin, end) with one worker pool (the audit-wide
/// scheduler restricted to the range).
void PreparedAudit::Impl::run_range(std::int64_t begin, std::int64_t end) {
    const int mt = max_trials();
    const std::int64_t total = unit_count();
    begin = std::clamp<std::int64_t>(begin, 0, total);
    end = std::clamp<std::int64_t>(end, begin, total);

    AuditScheduler scheduler(jobs.size(), mt, config.trial_chunk, begin, end);
    std::int64_t available_units = 0;
    for (InstanceJob& job : jobs) {
        if (!job.runnable) {
            scheduler.skip_instance(job.index);
            continue;
        }
        const std::int64_t lo =
            std::max<std::int64_t>(begin, static_cast<std::int64_t>(job.index) * mt);
        const std::int64_t hi =
            std::min<std::int64_t>(end, static_cast<std::int64_t>(job.index + 1) * mt);
        if (hi > lo) available_units += hi - lo;
        // Failures found by earlier ranges (or injected records) early-stop
        // this range's trials of the same instance.
        if (lowest_failure[job.index] < mt) scheduler.fail_at(job.index, lowest_failure[job.index]);
    }
    const int workers = resolve_thread_count(config.num_threads, available_units);
    stats.workers = workers;
    for (InstanceJob& job : jobs)
        if (job.runnable) job.report.threads = workers;

    if (!registry)
        registry = std::make_unique<interp::PlanCacheRegistry>(
            static_cast<std::size_t>(std::max(config.plan_cache_bound, 0)));
    if (!cache) {
        const std::size_t context_bound =
            config.context_cache_bound > 0 ? static_cast<std::size_t>(config.context_cache_bound)
                                           : static_cast<std::size_t>(workers);
        cache = std::make_unique<TesterCache>(context_bound, config.diff);
    }
    PoolShared sh{jobs, scheduler, *cache, *registry};
    sh.epoch = epoch;

    if (workers == 1) {
        run_worker(sh);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int i = 0; i < workers; ++i) pool.emplace_back([&sh] { run_worker(sh); });
        for (std::thread& t : pool) t.join();
    }
    if (sh.error) std::rethrow_exception(sh.error);

    // Flush retires for instances the range has fully passed (stragglers,
    // tail instances) so registry eviction counts are deterministic for a
    // completed range.  Instances extending past `end` stay live: a later
    // range (the next shard checkpoint chunk) will claim their units.
    for (InstanceJob& job : jobs)
        if (static_cast<std::int64_t>(job.index + 1) * mt <= end) registry->retire(job.index);
    stats.spec = registry->spec_totals();
    stats.units += sh.units.load(std::memory_order_relaxed);
    stats.claims += sh.claims.load(std::memory_order_relaxed);
    const TesterCache::Stats cache_stats = cache->stats();
    stats.contexts_built = cache_stats.built;
    stats.context_hits = cache_stats.hits;
    stats.context_rebinds = cache_stats.rebinds;
    stats.context_evictions = cache_stats.evictions;
    stats.plan_caches_evicted = static_cast<std::int64_t>(registry->evictions());

    note_failures(begin, end);
}

/// Folds failures recorded in [begin, end) into the per-instance
/// lowest-failure watermarks.
void PreparedAudit::Impl::note_failures(std::int64_t begin, std::int64_t end) {
    const int mt = max_trials();
    if (mt == 0) return;
    for (std::int64_t u = begin; u < end; ++u) {
        const std::size_t inst = static_cast<std::size_t>(u / mt);
        const int trial = static_cast<int>(u % mt);
        if (trial >= lowest_failure[inst]) {
            // Skip to this instance's last unit of the range.
            const std::int64_t next_inst = (static_cast<std::int64_t>(inst) + 1) * mt;
            u = std::min(next_inst, end) - 1;
            continue;
        }
        const InstanceJob& job = jobs[inst];
        if (!job.runnable) {
            u = std::min((static_cast<std::int64_t>(inst) + 1) * mt, end) - 1;
            continue;
        }
        if (job.records[static_cast<std::size_t>(trial)].kind == TrialRecord::Kind::Failed)
            lowest_failure[inst] = trial;
    }
}

PreparedAudit::PreparedAudit() : impl_(std::make_unique<Impl>()) {}
PreparedAudit::~PreparedAudit() = default;
PreparedAudit::PreparedAudit(PreparedAudit&&) noexcept = default;
PreparedAudit& PreparedAudit::operator=(PreparedAudit&&) noexcept = default;

std::size_t PreparedAudit::instance_count() const { return impl_->jobs.size(); }

int PreparedAudit::max_trials() const { return impl_->max_trials(); }

std::int64_t PreparedAudit::unit_count() const { return impl_->unit_count(); }

bool PreparedAudit::instance_runnable(std::size_t instance) const {
    return impl_->jobs.at(instance).runnable;
}

const FuzzReport& PreparedAudit::prepared_report(std::size_t instance) const {
    return impl_->jobs.at(instance).report;
}

void PreparedAudit::run_range(std::int64_t unit_begin, std::int64_t unit_end) {
    impl_->run_range(unit_begin, unit_end);
}

const std::vector<TrialRecord>& PreparedAudit::records(std::size_t instance) const {
    return impl_->jobs.at(instance).records;
}

void PreparedAudit::set_record(std::int64_t unit, TrialRecord record) {
    const int mt = impl_->max_trials();
    if (mt == 0 || unit < 0 || unit >= impl_->unit_count())
        throw common::Error("set_record: unit " + std::to_string(unit) +
                            " outside the audit's unit space");
    const std::size_t instance = static_cast<std::size_t>(unit / mt);
    const int trial = static_cast<int>(unit % mt);
    InstanceJob& job = impl_->jobs[instance];
    if (!job.runnable) return;  // report final since prepare; slots unused
    if (record.kind == TrialRecord::Kind::Failed && trial < impl_->lowest_failure[instance])
        impl_->lowest_failure[instance] = trial;
    job.records[static_cast<std::size_t>(trial)] = std::move(record);
}

std::vector<FuzzReport> PreparedAudit::finalize() {
    std::vector<FuzzReport> reports;
    reports.reserve(impl_->jobs.size());
    for (InstanceJob& job : impl_->jobs) {
        finalize_instance(impl_->config, job);
        reports.push_back(std::move(job.report));
    }
    return reports;
}

const SchedulerStats& PreparedAudit::stats() const { return impl_->stats; }

std::vector<feedback::CorpusEntry> PreparedAudit::corpus() const {
    std::vector<feedback::CorpusEntry> out;
    // Jobs are in canonical instance order and each instance's entries are
    // in ascending trial order, so the concatenation is already the
    // canonical merge order (feedback::merge_corpus_entries is a no-op on
    // it).
    for (const InstanceJob& job : impl_->jobs) {
        if (!job.feedback) continue;
        std::vector<feedback::CorpusEntry> entries = job.feedback->entries();
        out.insert(out.end(), std::make_move_iterator(entries.begin()),
                   std::make_move_iterator(entries.end()));
    }
    return out;
}

FuzzReport Fuzzer::test_instance(const ir::SDFG& p, const xform::Transformation& transformation,
                                 const xform::Match& match) {
    PreparedAudit audit;
    audit.impl_->config = normalized_config(config_);
    InstanceJob& job = audit.impl_->jobs.emplace_back();
    job.index = 0;
    prepare_instance(audit.impl_->config, p, transformation, match, job);
    audit.impl_->lowest_failure.assign(1, audit.impl_->max_trials());
    audit.impl_->stats.prepare_seconds = job.setup_seconds;
    audit.impl_->epoch = std::chrono::steady_clock::now();
    audit.run_range(0, audit.unit_count());
    std::vector<FuzzReport> reports = audit.finalize();
    stats_ = audit.stats();
    return std::move(reports.front());
}

std::vector<FuzzReport> Fuzzer::audit(const ir::SDFG& p,
                                      const std::vector<xform::TransformationPtr>& passes) {
    PreparedAudit prepared = prepare(p, passes);
    prepared.run_range(0, prepared.unit_count());
    std::vector<FuzzReport> reports = prepared.finalize();
    stats_ = prepared.stats();
    return reports;
}

PreparedAudit Fuzzer::prepare(const ir::SDFG& p,
                              const std::vector<xform::TransformationPtr>& passes) {
    // Match discovery stays sequential — its order fixes the canonical
    // instance indexing the merge replays — then the per-instance pipelines
    // (cutout, min-cut, apply, constraints), which are independent pure
    // functions of (program, match) writing only their own job slot, fan
    // out over the worker pool.  Reports are byte-identical at any thread
    // count; only prepare_seconds varies.
    const auto prep0 = std::chrono::steady_clock::now();
    PreparedAudit prepared;
    prepared.impl_->config = normalized_config(config_);
    const FuzzConfig& config = prepared.impl_->config;
    std::deque<InstanceJob>& jobs = prepared.impl_->jobs;
    std::vector<std::pair<const xform::Transformation*, xform::Match>> units;
    for (const auto& pass : passes) {
        for (xform::Match& match : pass->find_matches(p)) {
            InstanceJob& job = jobs.emplace_back();
            job.index = jobs.size() - 1;
            units.emplace_back(pass.get(), std::move(match));
        }
    }
    const int prep_workers =
        resolve_thread_count(config_.num_threads, static_cast<std::int64_t>(jobs.size()));
    if (prep_workers <= 1 || jobs.size() <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            prepare_instance(config, p, *units[i].first, units[i].second, jobs[i]);
    } else {
        // Claims are monotonic, so when a prepare throws, every lower-index
        // instance has already been claimed and will finish — rethrowing the
        // lowest-index failure reproduces exactly what the sequential loop
        // would have raised.
        std::atomic<std::size_t> next{0};
        std::atomic<bool> abort{false};
        std::mutex error_mutex;
        std::size_t error_index = std::numeric_limits<std::size_t>::max();
        std::exception_ptr error;
        auto prep_worker = [&] {
            for (;;) {
                // Check abort *before* claiming: a claimed index is always
                // prepared, so every index below any failing one is
                // attempted and the lowest-index rethrow below matches the
                // sequential loop exactly.
                if (abort.load(std::memory_order_acquire)) return;
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= jobs.size()) return;
                try {
                    prepare_instance(config, p, *units[i].first, units[i].second, jobs[i]);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (i < error_index) {
                        error_index = i;
                        error = std::current_exception();
                    }
                    abort.store(true, std::memory_order_release);
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(prep_workers));
        for (int t = 0; t < prep_workers; ++t) pool.emplace_back(prep_worker);
        for (std::thread& t : pool) t.join();
        if (error) std::rethrow_exception(error);
    }
    prepared.impl_->stats.prepare_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - prep0).count();
    prepared.impl_->lowest_failure.assign(jobs.size(), prepared.impl_->max_trials());
    prepared.impl_->epoch = std::chrono::steady_clock::now();
    return prepared;
}

}  // namespace ff::core
