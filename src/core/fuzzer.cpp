#include "core/fuzzer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "core/testcase_io.h"

namespace ff::core {

namespace {

std::size_t count_dataflow_nodes(const ir::SDFG& sdfg) {
    std::size_t n = 0;
    for (ir::StateId sid : sdfg.states()) n += sdfg.state(sid).graph().node_count();
    return n;
}

int resolve_thread_count(int requested, int max_trials) {
    int t = requested;
    if (t <= 0) t = static_cast<int>(std::thread::hardware_concurrency());
    // Never more workers than trials (a zero-trial budget needs one worker
    // at most — it exits on its first claim).
    return std::clamp(t, 1, std::max(max_trials, 1));
}

/// Outcome of one trial, recorded at its trial index so aggregation can
/// replay the canonical sequential order regardless of which thread ran it.
struct TrialRecord {
    enum class Kind : std::uint8_t { NotRun, Uninteresting, Pass, Failed };
    Kind kind = Kind::NotRun;
    Verdict verdict = Verdict::Pass;
    std::string detail;
    /// Inputs are retained only for failing trials (artifact reproduction).
    std::unique_ptr<interp::Context> inputs;
};

/// Runs trials by claiming indices off a shared atomic counter until the
/// budget is exhausted or a failure at a lower index makes further indices
/// irrelevant.  Claims are monotonically increasing, so every trial with an
/// index <= the lowest failure is guaranteed to execute — the property the
/// sequential-order aggregation relies on.  (For uniform micro-tasks like
/// fuzz trials, work stealing degenerates to exactly this single shared
/// queue; per-thread deques would only add overhead.)
class TrialScheduler {
public:
    explicit TrialScheduler(int max_trials) : max_trials_(max_trials), stop_at_(max_trials) {}

    /// Next trial index to run, or -1 when done.
    int claim() {
        const int t = next_.fetch_add(1, std::memory_order_relaxed);
        if (t >= max_trials_ || t > stop_at_.load(std::memory_order_acquire)) return -1;
        return t;
    }

    /// Records a failure at `trial`; later indices stop being claimed.
    void fail_at(int trial) {
        int cur = stop_at_.load(std::memory_order_acquire);
        while (trial < cur &&
               !stop_at_.compare_exchange_weak(cur, trial, std::memory_order_acq_rel)) {
        }
    }

    /// Aborts all further claims (worker raised an exception).
    void abort() { stop_at_.store(-1, std::memory_order_release); }

private:
    const int max_trials_;
    std::atomic<int> next_{0};
    std::atomic<int> stop_at_;
};

}  // namespace

FuzzReport Fuzzer::test_instance(const ir::SDFG& p, const xform::Transformation& transformation,
                                 const xform::Match& match) {
    const auto t0 = std::chrono::steady_clock::now();
    FuzzReport report;
    report.transformation = transformation.name();
    report.match_description = match.description;
    report.program_nodes = count_dataflow_nodes(p);

    // 1-2. Change isolation (white-box) and cutout extraction.
    Cutout cutout;
    if (config_.whole_program) {
        cutout = whole_program_cutout(p);
    } else {
        const xform::ChangeSet delta = transformation.affected_nodes(p, match);
        cutout = extract_cutout(p, delta, config_.cutout);
        report.input_volume_before_mincut =
            cutout.concrete_input_volume(config_.cutout.defaults);

        // 3. Minimum input-flow cut.
        if (config_.use_mincut && !cutout.whole_program) {
            MinCutResult mc = minimize_input_configuration(p, delta, cutout, config_.cutout);
            report.mincut_improved = mc.improved;
            cutout = std::move(mc.cutout);
        }
    }
    report.whole_program_cutout = cutout.whole_program;
    report.cutout_nodes = count_dataflow_nodes(cutout.program);
    report.input_volume = cutout.concrete_input_volume(config_.cutout.defaults);
    if (report.input_volume_before_mincut == 0)
        report.input_volume_before_mincut = report.input_volume;

    // 4. Apply the transformation to (a copy of) the cutout.
    ir::SDFG transformed = cutout.program;
    try {
        const xform::Match cutout_match = cutout.remap_match(match);
        transformation.apply(transformed, cutout_match);
    } catch (const std::exception& e) {
        report.verdict = Verdict::InvalidCode;
        report.detail = std::string("apply failed: ") + e.what();
        report.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                             .count();
        return report;
    }

    // 5. Gray-box constraints + differential fuzzing, fanned out over a
    // pool of per-thread testers sharing one plan cache.  Trial inputs are
    // a pure function of (seed, trial index) and records are aggregated in
    // index order below, so any thread count yields a byte-identical report.
    const Constraints constraints = derive_constraints(p, cutout.program);
    const InputSampler sampler(config_.sampler);
    const int threads = resolve_thread_count(config_.num_threads, config_.max_trials);
    report.threads = threads;
    auto plan_cache = std::make_shared<interp::PlanCache>();
    // Validate the transformed graph once; every per-thread tester reuses
    // the result instead of re-walking the same immutable graph.
    const ValidationResult validation = ValidationResult::of(transformed);

    std::vector<TrialRecord> records(
        static_cast<std::size_t>(std::max(config_.max_trials, 0)));
    TrialScheduler scheduler(config_.max_trials);
    std::exception_ptr worker_error;
    std::mutex error_mutex;

    auto run_trials = [&](DifferentialTester& tester) {
        try {
            for (;;) {
                const int trial = scheduler.claim();
                if (trial < 0) break;
                TrialRecord& rec = records[static_cast<std::size_t>(trial)];
                interp::Context inputs;
                try {
                    inputs = sampler.sample(cutout.program, cutout.input_config, constraints,
                                            static_cast<std::uint64_t>(trial));
                } catch (const std::exception&) {
                    rec.kind = TrialRecord::Kind::Uninteresting;  // unresolvable shapes
                    continue;
                }
                const TrialOutcome outcome = tester.run_trial(inputs);
                if (outcome.verdict == Verdict::Uninteresting) {
                    rec.kind = TrialRecord::Kind::Uninteresting;
                    continue;
                }
                if (outcome.verdict == Verdict::Pass) {
                    rec.kind = TrialRecord::Kind::Pass;
                    continue;
                }
                rec.verdict = outcome.verdict;
                rec.detail = outcome.detail;
                rec.inputs = std::make_unique<interp::Context>(std::move(inputs));
                rec.kind = TrialRecord::Kind::Failed;
                scheduler.fail_at(trial);
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!worker_error) worker_error = std::current_exception();
            scheduler.abort();
        }
    };

    if (threads == 1) {
        DifferentialTester tester(cutout.program, transformed, cutout.system_state,
                                  config_.diff, plan_cache, &validation);
        run_trials(tester);
    } else {
        std::vector<std::unique_ptr<DifferentialTester>> testers;
        testers.reserve(static_cast<std::size_t>(threads));
        for (int i = 0; i < threads; ++i)
            testers.push_back(std::make_unique<DifferentialTester>(
                cutout.program, transformed, cutout.system_state, config_.diff, plan_cache,
                &validation));
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(threads));
        for (int i = 0; i < threads; ++i)
            pool.emplace_back([&run_trials, &testers, i] { run_trials(*testers[i]); });
        for (std::thread& t : pool) t.join();
    }
    if (worker_error) std::rethrow_exception(worker_error);

    // Sequential-order aggregation: replays exactly what the single-thread
    // loop would have counted, stopping at the lowest-indexed failure.
    for (int trial = 0; trial < config_.max_trials; ++trial) {
        const TrialRecord& rec = records[static_cast<std::size_t>(trial)];
        if (rec.kind == TrialRecord::Kind::NotRun) break;  // past the first failure
        if (rec.kind == TrialRecord::Kind::Uninteresting) {
            ++report.uninteresting;
            continue;
        }
        ++report.trials;
        if (rec.kind == TrialRecord::Kind::Pass) continue;

        report.verdict = rec.verdict;
        report.detail = rec.detail;
        if (!config_.artifact_dir.empty()) {
            report.artifact_path = save_testcase_artifact(
                config_.artifact_dir, cutout, transformed, *rec.inputs, report);
        }
        break;
    }
    report.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const int executed = report.trials + report.uninteresting;
    if (report.seconds > 0.0 && executed > 0)
        report.trials_per_second = executed / report.seconds;
    return report;
}

std::vector<FuzzReport> Fuzzer::audit(const ir::SDFG& p,
                                      const std::vector<xform::TransformationPtr>& passes) {
    std::vector<FuzzReport> reports;
    for (const auto& pass : passes) {
        for (const xform::Match& match : pass->find_matches(p))
            reports.push_back(test_instance(p, *pass, match));
    }
    return reports;
}

}  // namespace ff::core
