#include "core/fuzzer.h"

#include <chrono>

#include "common/error.h"
#include "core/testcase_io.h"

namespace ff::core {

namespace {

std::size_t count_dataflow_nodes(const ir::SDFG& sdfg) {
    std::size_t n = 0;
    for (ir::StateId sid : sdfg.states()) n += sdfg.state(sid).graph().node_count();
    return n;
}

}  // namespace

FuzzReport Fuzzer::test_instance(const ir::SDFG& p, const xform::Transformation& transformation,
                                 const xform::Match& match) {
    const auto t0 = std::chrono::steady_clock::now();
    FuzzReport report;
    report.transformation = transformation.name();
    report.match_description = match.description;
    report.program_nodes = count_dataflow_nodes(p);

    // 1-2. Change isolation (white-box) and cutout extraction.
    Cutout cutout;
    if (config_.whole_program) {
        cutout = whole_program_cutout(p);
    } else {
        const xform::ChangeSet delta = transformation.affected_nodes(p, match);
        cutout = extract_cutout(p, delta, config_.cutout);
        report.input_volume_before_mincut =
            cutout.concrete_input_volume(config_.cutout.defaults);

        // 3. Minimum input-flow cut.
        if (config_.use_mincut && !cutout.whole_program) {
            MinCutResult mc = minimize_input_configuration(p, delta, cutout, config_.cutout);
            report.mincut_improved = mc.improved;
            cutout = std::move(mc.cutout);
        }
    }
    report.whole_program_cutout = cutout.whole_program;
    report.cutout_nodes = count_dataflow_nodes(cutout.program);
    report.input_volume = cutout.concrete_input_volume(config_.cutout.defaults);
    if (report.input_volume_before_mincut == 0)
        report.input_volume_before_mincut = report.input_volume;

    // 4. Apply the transformation to (a copy of) the cutout.
    ir::SDFG transformed = cutout.program;
    try {
        const xform::Match cutout_match = cutout.remap_match(match);
        transformation.apply(transformed, cutout_match);
    } catch (const std::exception& e) {
        report.verdict = Verdict::InvalidCode;
        report.detail = std::string("apply failed: ") + e.what();
        report.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                             .count();
        return report;
    }

    // 5. Gray-box constraints + differential fuzzing.
    const Constraints constraints = derive_constraints(p, cutout.program);
    const InputSampler sampler(config_.sampler);
    DifferentialTester tester(cutout.program, transformed, cutout.system_state, config_.diff);

    for (int trial = 0; trial < config_.max_trials; ++trial) {
        interp::Context inputs;
        try {
            inputs = sampler.sample(cutout.program, cutout.input_config, constraints,
                                    static_cast<std::uint64_t>(trial));
        } catch (const std::exception&) {
            ++report.uninteresting;  // unresolvable shapes: resample
            continue;
        }
        const TrialOutcome outcome = tester.run_trial(inputs);
        if (outcome.verdict == Verdict::Uninteresting) {
            ++report.uninteresting;
            continue;
        }
        ++report.trials;
        if (outcome.verdict == Verdict::Pass) continue;

        report.verdict = outcome.verdict;
        report.detail = outcome.detail;
        if (!config_.artifact_dir.empty()) {
            report.artifact_path = save_testcase_artifact(
                config_.artifact_dir, cutout, transformed, inputs, report);
        }
        break;
    }
    report.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const int executed = report.trials + report.uninteresting;
    if (report.seconds > 0.0 && executed > 0)
        report.trials_per_second = executed / report.seconds;
    return report;
}

std::vector<FuzzReport> Fuzzer::audit(const ir::SDFG& p,
                                      const std::vector<xform::TransformationPtr>& passes) {
    std::vector<FuzzReport> reports;
    for (const auto& pass : passes) {
        for (const xform::Match& match : pass->find_matches(p))
            reports.push_back(test_instance(p, *pass, match));
    }
    return reports;
}

}  // namespace ff::core
