// Black-box change isolation: graph diff between G_p and G_T(p).
//
// White-box transformations self-report their change set (Sec. 3, step 2);
// for black-box ones "this change set has to be obtained through analyzing
// the difference between G_p and G_T(p)".  Because SDFGs have stable node
// ids under in-place transformation, the diff compares slot-by-slot.
#pragma once

#include "transforms/transformation.h"

namespace ff::core {

/// Nodes present/changed between `before` and `after`.  Node ids present in
/// only one side, or whose payload differs, are reported (in `before`'s id
/// space where possible).  Interstate differences promote the incident
/// states into `control_flow_states`.
xform::ChangeSet diff_changeset(const ir::SDFG& before, const ir::SDFG& after);

}  // namespace ff::core
