#include "core/constraints.h"

#include <algorithm>

namespace ff::core {

std::map<std::string, Interval> detect_loop_ranges(const ir::SDFG& sdfg) {
    // Collect per symbol: constant initializations, self-increments, and
    // constant comparison bounds.
    std::map<std::string, std::vector<std::int64_t>> init_consts;
    std::map<std::string, bool> self_increment;
    std::map<std::string, std::vector<std::int64_t>> cmp_bounds;

    for (graph::EdgeId eid : sdfg.cfg().edges()) {
        const ir::InterstateEdge& e = sdfg.cfg().edge(eid).data;
        for (const auto& [symbol, expr] : e.assignments) {
            if (expr->is_constant()) {
                init_consts[symbol].push_back(expr->constant_value());
            } else {
                // s := s + c / s - c?
                std::set<std::string> syms = expr->free_symbols();
                if (syms.size() == 1 && syms.count(symbol)) self_increment[symbol] = true;
            }
        }
        if (e.condition && e.condition->kind() == sym::BoolExpr::Kind::Compare) {
            const auto& lhs = e.condition->lhs();
            const auto& rhs = e.condition->rhs();
            if (lhs->is_symbol() && rhs->is_constant())
                cmp_bounds[lhs->symbol_name()].push_back(rhs->constant_value());
            if (rhs->is_symbol() && lhs->is_constant())
                cmp_bounds[rhs->symbol_name()].push_back(lhs->constant_value());
        }
    }

    std::map<std::string, Interval> out;
    for (const auto& [symbol, inits] : init_consts) {
        if (!self_increment.count(symbol)) continue;
        auto bit = cmp_bounds.find(symbol);
        if (bit == cmp_bounds.end()) continue;
        std::int64_t lo = *std::min_element(inits.begin(), inits.end());
        std::int64_t hi = *std::max_element(inits.begin(), inits.end());
        for (std::int64_t b : bit->second) {
            lo = std::min(lo, b);
            hi = std::max(hi, b);
        }
        out[symbol] = Interval{lo, hi};
    }
    return out;
}

Constraints derive_constraints(const ir::SDFG& original, const ir::SDFG& cutout) {
    Constraints c;

    // Interstate-assigned symbols are produced by the program itself.
    std::set<std::string> assigned;
    for (graph::EdgeId eid : cutout.cfg().edges())
        for (const auto& [symbol, expr] : cutout.cfg().edge(eid).data.assignments) {
            (void)expr;
            assigned.insert(symbol);
        }

    for (const auto& s : cutout.used_free_symbols())
        if (!assigned.count(s)) c.free_symbols.insert(s);

    // Size symbols: anything in a container shape.
    for (const auto& [name, desc] : cutout.containers()) {
        (void)name;
        for (const auto& extent : desc.shape)
            for (const auto& s : extent->free_symbols())
                if (c.free_symbols.count(s)) c.size_symbols.insert(s);
    }

    // Index bounds: symbol used as a plain index into dimension d.
    for (ir::StateId sid : cutout.states()) {
        const auto& g = cutout.state(sid).graph();
        for (graph::EdgeId eid : g.edges()) {
            const ir::Memlet& m = g.edge(eid).data.memlet;
            for (std::size_t d = 0; d < m.subset.dims(); ++d) {
                const ir::Range& r = m.subset.ranges[d];
                if (r.begin->is_symbol() && r.begin->equals(*r.end)) {
                    const std::string& s = r.begin->symbol_name();
                    if (c.free_symbols.count(s) && !c.size_symbols.count(s))
                        c.index_bounds[s].push_back(IndexBound{m.data, d});
                }
            }
        }
    }

    // Loop context from the original program.
    for (const auto& [symbol, range] : detect_loop_ranges(original))
        if (c.free_symbols.count(symbol)) c.loop_ranges[symbol] = range;

    return c;
}

}  // namespace ff::core
