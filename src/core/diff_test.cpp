#include "core/diff_test.h"

#include "common/error.h"

namespace ff::core {

const char* verdict_name(Verdict v) {
    switch (v) {
        case Verdict::Pass: return "pass";
        case Verdict::SemanticsChanged: return "semantics-changed";
        case Verdict::TransformedCrash: return "transformed-crash";
        case Verdict::TransformedHang: return "transformed-hang";
        case Verdict::InvalidCode: return "invalid-code";
        case Verdict::Uninteresting: return "uninteresting";
    }
    return "?";
}

ValidationResult ValidationResult::of(const ir::SDFG& transformed) {
    ValidationResult result;
    try {
        transformed.validate();
    } catch (const std::exception& e) {
        result.valid = false;
        result.error = e.what();
    }
    return result;
}

DifferentialTester::DifferentialTester(const ir::SDFG& original, const ir::SDFG& transformed,
                                       std::set<std::string> system_state, DiffConfig config,
                                       interp::PlanCachePtr plan_cache,
                                       const ValidationResult* prevalidated)
    : original_(original),
      transformed_(transformed),
      system_state_(std::move(system_state)),
      config_(config),
      // One interpreter per side, retained for the tester's lifetime: state
      // plans, compiled tasklet bytecode and the execution scratch arena are
      // built on the first trial and amortized over every subsequent one
      // (config.exec.use_compiled_tasklets selects the engine).  Both sides
      // share one plan cache — and with it every sibling tester running
      // trials of the same instance on other threads.
      interp_original_(config.exec, plan_cache ? plan_cache
                                               : std::make_shared<interp::PlanCache>()),
      interp_transformed_(config.exec, interp_original_.plan_cache()) {
    const ValidationResult result =
        prevalidated ? *prevalidated : ValidationResult::of(transformed_);
    valid_ = result.valid;
    validation_error_ = result.error;
}

TrialOutcome DifferentialTester::run_trial(const interp::Context& inputs) {
    if (!valid_) return TrialOutcome{Verdict::InvalidCode, validation_error_};

    interp::Context ctx_original = inputs;
    const interp::ExecResult r1 = interp_original_.run(original_, ctx_original);
    if (!r1.ok()) return TrialOutcome{Verdict::Uninteresting, r1.message};

    interp::Context ctx_transformed = inputs;
    const interp::ExecResult r2 = interp_transformed_.run(transformed_, ctx_transformed);
    if (r2.status == interp::ExecStatus::Hang)
        return TrialOutcome{Verdict::TransformedHang, r2.message};
    if (r2.status == interp::ExecStatus::Crash)
        return TrialOutcome{Verdict::TransformedCrash, r2.message};

    // System-state comparison.
    for (const auto& name : system_state_) {
        const bool in1 = ctx_original.has_buffer(name);
        const bool in2 = ctx_transformed.has_buffer(name);
        if (!in1 && !in2) continue;  // neither side touched it
        if (in1 != in2)
            return TrialOutcome{Verdict::SemanticsChanged,
                                "system state container '" + name +
                                    "' produced by only one side"};
        const auto mismatch = interp::compare_buffers(
            ctx_original.buffers.at(name), ctx_transformed.buffers.at(name), config_.threshold);
        if (mismatch) {
            return TrialOutcome{
                Verdict::SemanticsChanged,
                "'" + name + "' differs at flat index " + std::to_string(mismatch->flat_index) +
                    ": " + std::to_string(mismatch->lhs) + " vs " +
                    std::to_string(mismatch->rhs)};
        }
    }
    return TrialOutcome{Verdict::Pass, ""};
}

}  // namespace ff::core
