#include "core/diff_test.h"

#include "common/error.h"

namespace ff::core {

const char* verdict_name(Verdict v) {
    switch (v) {
        case Verdict::Pass: return "pass";
        case Verdict::SemanticsChanged: return "semantics-changed";
        case Verdict::TransformedCrash: return "transformed-crash";
        case Verdict::TransformedHang: return "transformed-hang";
        case Verdict::InvalidCode: return "invalid-code";
        case Verdict::Uninteresting: return "uninteresting";
        case Verdict::ResourceExhausted: return "resource-exhausted";
    }
    return "?";
}

Verdict verdict_from_name(const std::string& name) {
    // Every enum value must appear here — the exhaustive round-trip test in
    // tests/test_fuzzer.cpp fails on any gap.
    for (Verdict v : {Verdict::Pass, Verdict::SemanticsChanged, Verdict::TransformedCrash,
                      Verdict::TransformedHang, Verdict::InvalidCode, Verdict::Uninteresting,
                      Verdict::ResourceExhausted}) {
        if (name == verdict_name(v)) return v;
    }
    throw common::Error("unknown verdict name: " + name);
}

ValidationResult ValidationResult::of(const ir::SDFG& transformed) {
    ValidationResult result;
    try {
        transformed.validate();
    } catch (const std::exception& e) {
        result.valid = false;
        result.error = e.what();
    }
    return result;
}

DifferentialTester::DifferentialTester(DiffConfig config)
    // One interpreter per side, retained for the tester's lifetime: state
    // plans, compiled tasklet bytecode and the execution scratch arena are
    // built on the first trial of a binding and amortized over every
    // subsequent one (config.exec.use_compiled_tasklets selects the engine).
    // An unbound tester carries throwaway private caches; bind() installs
    // the instance's shared cache.
    : config_(config), interp_original_(config.exec), interp_transformed_(config.exec) {}

DifferentialTester::DifferentialTester(const ir::SDFG& original, const ir::SDFG& transformed,
                                       std::set<std::string> system_state, DiffConfig config,
                                       interp::PlanCachePtr plan_cache,
                                       const ValidationResult* prevalidated)
    : DifferentialTester(config) {
    owned_system_state_ = std::move(system_state);
    bind(original, transformed, owned_system_state_, std::move(plan_cache), prevalidated);
}

void DifferentialTester::bind(const ir::SDFG& original, const ir::SDFG& transformed,
                              const std::set<std::string>& system_state,
                              interp::PlanCachePtr plan_cache,
                              const ValidationResult* prevalidated) {
    original_ = &original;
    transformed_ = &transformed;
    system_state_ = &system_state;
    // Both sides share one plan cache — and with it every sibling tester
    // running trials of the same instance on other threads.
    interp_original_.rebind_plan_cache(plan_cache ? std::move(plan_cache)
                                                  : std::make_shared<interp::PlanCache>());
    interp_transformed_.rebind_plan_cache(interp_original_.plan_cache());
    validation_ = prevalidated ? *prevalidated : ValidationResult::of(transformed);

    // Coverage instruments the *original* side only: the corpus and report
    // counters are defined over original-side def-use pairs, which exist on
    // every trial (the transformed side may not even run).
    if (config_.exec.coverage) {
        atlas_ = interp_original_.plan_cache()->atlas_for(original);
        cov_map_.reset(atlas_->pair_count());
        interp_original_.set_coverage(&cov_map_);
    } else {
        atlas_.reset();
        interp_original_.set_coverage(nullptr);
    }
}

TrialOutcome DifferentialTester::run_trial(const interp::Context& inputs) {
    if (!original_) throw common::Error("DifferentialTester: run_trial on unbound tester");
    if (!validation_.valid) {
        TrialOutcome invalid;
        invalid.verdict = Verdict::InvalidCode;
        invalid.detail = validation_.error;
        return invalid;
    }

    if (atlas_) cov_map_.reset(atlas_->pair_count());
    interp::Context ctx_original = inputs;
    const interp::ExecResult r1 = interp_original_.run(*original_, ctx_original);
    // A resource-budget exhaustion on the *original* side is the input's
    // fault, exactly like an original-side crash or hang: resampled.
    if (!r1.ok()) {
        TrialOutcome uninteresting;
        uninteresting.verdict = Verdict::Uninteresting;
        uninteresting.detail = r1.message;
        return uninteresting;
    }

    TrialOutcome outcome;
    outcome.original_points = r1.points;
    outcome.original_instructions = r1.instructions;
    if (atlas_) outcome.coverage = cov_map_.trimmed_words();

    interp::Context ctx_transformed = inputs;
    const interp::ExecResult r2 = interp_transformed_.run(*transformed_, ctx_transformed);
    if (r2.status == interp::ExecStatus::Hang) {
        outcome.verdict = Verdict::TransformedHang;
        outcome.detail = r2.message;
        return outcome;
    }
    if (r2.status == interp::ExecStatus::Crash) {
        outcome.verdict = Verdict::TransformedCrash;
        outcome.detail = r2.message;
        return outcome;
    }
    if (r2.status == interp::ExecStatus::Resource) {
        outcome.verdict = Verdict::ResourceExhausted;
        outcome.detail = r2.message;
        return outcome;
    }
    outcome.transformed_points = r2.points;
    outcome.transformed_instructions = r2.instructions;

    // System-state comparison.
    for (const auto& name : *system_state_) {
        const bool in1 = ctx_original.has_buffer(name);
        const bool in2 = ctx_transformed.has_buffer(name);
        if (!in1 && !in2) continue;  // neither side touched it
        if (in1 != in2) {
            outcome.verdict = Verdict::SemanticsChanged;
            outcome.detail = "system state container '" + name + "' produced by only one side";
            return outcome;
        }
        const auto mismatch = interp::compare_buffers(
            ctx_original.buffers.at(name), ctx_transformed.buffers.at(name), config_.threshold);
        if (mismatch) {
            outcome.verdict = Verdict::SemanticsChanged;
            outcome.detail = "'" + name + "' differs at flat index " +
                             std::to_string(mismatch->flat_index) + ": " +
                             std::to_string(mismatch->lhs) + " vs " +
                             std::to_string(mismatch->rhs);
            return outcome;
        }
    }
    outcome.verdict = Verdict::Pass;
    return outcome;
}

std::unique_ptr<DifferentialTester> TesterCache::acquire(
    std::uint64_t instance, const std::function<void(DifferentialTester&)>& bind_fn) {
    std::unique_ptr<DifferentialTester> tester;
    bool needs_bind = true;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // Prefer an idle tester already bound to this instance...
        for (auto it = idle_.begin(); it != idle_.end(); ++it) {
            if (it->instance == instance) {
                tester = std::move(it->tester);
                idle_.erase(it);
                needs_bind = false;
                ++stats_.hits;
                break;
            }
        }
        // ...else repurpose the least recently released one.
        if (!tester && !idle_.empty()) {
            auto lru = idle_.begin();
            for (auto it = idle_.begin(); it != idle_.end(); ++it)
                if (it->stamp < lru->stamp) lru = it;
            tester = std::move(lru->tester);
            idle_.erase(lru);
            ++stats_.rebinds;
        }
        if (!tester) ++stats_.built;
    }
    if (!tester) tester = std::make_unique<DifferentialTester>(config_);
    if (needs_bind) bind_fn(*tester);
    return tester;
}

void TesterCache::release(std::unique_ptr<DifferentialTester> tester, std::uint64_t instance) {
    std::unique_ptr<DifferentialTester> evicted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (idle_.size() < bound_) {
            idle_.push_back(Entry{std::move(tester), instance, ++clock_});
        } else {
            evicted = std::move(tester);
            ++stats_.evictions;
        }
    }
    // `evicted` (two interpreters) is destroyed outside the lock.
}

TesterCache::Stats TesterCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t TesterCache::idle_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return idle_.size();
}

}  // namespace ff::core
