#include "core/guided.h"

#include <utility>

#include "common/rng.h"
#include "core/testcase_io.h"
#include "interp/plan_cache.h"

namespace ff::core {

InstanceFeedback::InstanceFeedback(const ir::SDFG& original,
                                   const std::set<std::string>& input_config,
                                   const Constraints& constraints, const InputSampler& sampler,
                                   interp::ExecConfig exec, int generation_size,
                                   std::int64_t instance)
    : original_(original),
      input_config_(input_config),
      constraints_(constraints),
      sampler_(sampler),
      generation_size_(generation_size < 1 ? 1 : generation_size),
      instance_(instance),
      interp_([&exec] {
          exec.coverage = true;
          return exec;
      }()) {
    atlas_ = interp_.plan_cache()->atlas_for(original_);
    cum_map_.reset(atlas_->pair_count());
    boundary_.push_back({0, 0});  // generation 0 mutates nothing
}

void InstanceFeedback::sync_boundaries() {
    // boundary_[g] snapshots the scan state over trials < g * generation
    // size; push it the moment the scan reaches that point, before any
    // further entry can fold in.
    while (static_cast<std::int64_t>(boundary_.size()) * generation_size_ <= scanned_)
        boundary_.push_back({digest_, entries_.size()});
}

std::vector<std::uint64_t> InstanceFeedback::coverage_of(std::int64_t trial,
                                                         const interp::Context& ctx) {
    const auto it = donated_.find(trial);
    if (it != donated_.end()) {
        std::vector<std::uint64_t> cov = std::move(it->second);
        donated_.erase(it);
        return cov;
    }
    // Cold path: this process never executed the trial (another shard owns
    // it, or the scheduler stopped early) — derive its coverage by running
    // the original side, exactly as the recording process did.
    run_map_.reset(atlas_->pair_count());
    interp_.set_coverage(&run_map_);
    interp::Context scratch = ctx;
    const interp::ExecResult r = interp_.run(original_, scratch);
    interp_.set_coverage(nullptr);
    if (!r.ok()) return {};
    return run_map_.trimmed_words();
}

void InstanceFeedback::scan_one() {
    const std::int64_t trial = scanned_;
    interp::Context ctx;
    bool drawn = false;
    try {
        ctx = draw(trial);
        drawn = true;
    } catch (const std::exception&) {
        // Unresolvable draw: the trial was recorded uninteresting with no
        // coverage; it contributes nothing to the corpus.
    }
    if (drawn) {
        const std::vector<std::uint64_t> cov = coverage_of(trial, ctx);
        if (!cov.empty() && cum_map_.absorb(cov)) {
            feedback::CorpusEntry entry;
            entry.instance = instance_;
            entry.trial = trial;
            entry.cov_hex = feedback::cov_words_to_hex(cov);
            entry.inputs = context_to_json(ctx);
            digest_ = feedback::corpus_digest_fold(digest_, entry);
            entries_.push_back(std::move(entry));
            parents_.push_back(std::move(ctx));
        }
    } else {
        donated_.erase(trial);
    }
    ++scanned_;
}

interp::Context InstanceFeedback::draw(std::int64_t trial) const {
    const std::int64_t gen = trial / generation_size_;
    const auto& [digest, parent_count] = boundary_.at(static_cast<std::size_t>(gen));
    if (parent_count == 0)
        return sampler_.sample(original_, input_config_, constraints_,
                               static_cast<std::uint64_t>(trial));
    // Deterministic parent choice: a hash of the trial index keyed by the
    // generation digest, so shards agree and reseeding the corpus reshuffles
    // the pairing.
    const std::size_t parent =
        static_cast<std::size_t>(common::splitmix64(
            static_cast<std::uint64_t>(trial) * 0x9E3779B97F4A7C15ull ^ digest)) %
        parent_count;
    return sampler_.mutate(original_, input_config_, constraints_,
                           static_cast<std::uint64_t>(trial), parents_[parent], digest);
}

interp::Context InstanceFeedback::sample_trial(std::int64_t trial) {
    std::lock_guard<std::mutex> lock(mutex_);
    // Derive the corpus through the previous generation before drawing from
    // it (a no-op for every trial after the generation's first).
    const std::int64_t needed = (trial / generation_size_) * generation_size_;
    while (scanned_ < needed) {
        sync_boundaries();
        scan_one();
    }
    sync_boundaries();
    return draw(trial);
}

void InstanceFeedback::note_trial(std::int64_t trial, const std::vector<std::uint64_t>& coverage) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (trial < scanned_) return;  // already folded into the scan
    donated_[trial] = coverage;
}

void InstanceFeedback::derive_through(std::int64_t trial_limit) {
    std::lock_guard<std::mutex> lock(mutex_);
    while (scanned_ < trial_limit) {
        sync_boundaries();
        scan_one();
    }
    sync_boundaries();
}

std::vector<feedback::CorpusEntry> InstanceFeedback::entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
}

std::uint32_t InstanceFeedback::pair_count() const { return atlas_->pair_count(); }

}  // namespace ff::core
