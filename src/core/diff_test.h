// Differential testing of a cutout against its transformed version (Sec. 5).
//
// A trial runs the same input configuration through both programs and
// compares the system state.  Verdict taxonomy mirrors the paper:
//  * SemanticsChanged — system state differs beyond the threshold (or
//    bitwise when threshold <= 0);
//  * TransformedCrash / TransformedHang — "the transformed program crashes
//    or hangs while the original does not";
//  * InvalidCode — the transformation raised while being applied, or
//    produced a graph that fails validation (Table 2's third class);
//  * Uninteresting — the *original* cutout rejected the input (both-crash
//    trials are resampled, not reported).
#pragma once

/// \file
/// Differential execution contexts: verdicts, the reusable
/// instance-switchable DifferentialTester, and the bounded TesterCache.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "feedback/coverage.h"
#include "interp/interpreter.h"
#include "ir/sdfg.h"

namespace ff::core {

/// Classification of one trial (or one whole instance), mirroring the
/// paper's failure taxonomy (Table 2).
enum class Verdict {
    Pass,              ///< System state matched within the threshold.
    SemanticsChanged,  ///< System state differs beyond the threshold.
    TransformedCrash,  ///< Transformed side crashed; original did not.
    TransformedHang,   ///< Transformed side exceeded the transition budget.
    InvalidCode,       ///< apply() raised, or the result fails validation.
    Uninteresting,     ///< The *original* rejected the input; resampled.
    /// Transformed side exhausted a deterministic resource budget
    /// (interp::ExecConfig::max_points / max_alloc_bytes) that the original
    /// stayed within.  A failing verdict: like a hang, it is a pure function
    /// of (program, inputs, budget), so reports stay byte-identical at any
    /// parallelism — budgets are part of the job key.
    ResourceExhausted,
};

/// Number of Verdict enum values — lets tests iterate the enum exhaustively
/// (the name<->value round-trip must cover every verdict).  Keep in sync
/// with the last enumerator above.
inline constexpr int kVerdictCount = static_cast<int>(Verdict::ResourceExhausted) + 1;

/// Stable lower-case name of `v` (used in reports and artifacts).
const char* verdict_name(Verdict v);

/// Inverse of verdict_name (test-case and shard-record deserialization);
/// throws common::Error for unknown names.
Verdict verdict_from_name(const std::string& name);

/// Result of one differential trial.
struct TrialOutcome {
    Verdict verdict = Verdict::Pass;  ///< Classification of the trial.
    std::string detail;               ///< Human-readable mismatch/crash info.
    /// Per-side execution cost (interp::ExecResult's counters), captured
    /// only for a side that completed Ok — error-path counts can differ
    /// between execution tiers and must never enter the record stream.
    /// These seed the performance-differential verdict class (ROADMAP).
    std::int64_t original_points = 0;
    std::int64_t original_instructions = 0;
    std::int64_t transformed_points = 0;
    std::int64_t transformed_instructions = 0;
    /// Original-side def-use coverage of the trial (trimmed words, see
    /// feedback/coverage.h), captured only when the tester's
    /// ExecConfig::coverage is set and the original completed Ok — like the
    /// cost counters, error-path coverage never enters the record stream.
    /// Tier-invariant, so it rides records without breaking byte-identical
    /// merges (docs/ARCHITECTURE.md clause 10).
    std::vector<std::uint64_t> coverage;
};

/// Comparison and execution parameters of the differential tester.
struct DiffConfig {
    /// Relative/absolute comparison threshold; <= 0 means bitwise (Sec. 5.1,
    /// default 1e-5 as in the paper).
    double threshold = 1e-5;
    interp::ExecConfig exec;  ///< Interpreter settings for both sides.
};

/// Outcome of validating a transformed graph, computable once and shared
/// across every execution context that fuzzes the same instance.
struct ValidationResult {
    bool valid = true;  ///< Whether the transformed graph validated.
    std::string error;  ///< Validation failure message when !valid.

    /// Validates `transformed`, capturing the exception message on failure.
    static ValidationResult of(const ir::SDFG& transformed);
};

/// A reusable differential-execution context: two interpreters (original /
/// transformed side) plus their scratch arenas.
///
/// A tester is *bound* to one transformation instance — an (original,
/// transformed, system-state, plan-cache) tuple — and runs any number of
/// trials against it.  Binding is switchable: the audit-wide scheduler keeps
/// a bounded cache of idle testers and rebinds the least recently used one
/// when a worker moves to a different instance, so interpreter scratch
/// allocations are reused across the whole audit instead of being rebuilt
/// per instance (see core::Fuzzer).
class DifferentialTester {
public:
    /// Unbound tester: interpreters and scratch only.  bind() must be called
    /// before run_trial().
    explicit DifferentialTester(DiffConfig config = {});

    /// Bound tester over `original` vs `transformed` (kept by reference —
    /// both must outlive the tester or its next bind()).  Validates
    /// `transformed` once up front (pass `prevalidated` to reuse a
    /// ValidationResult computed elsewhere instead of re-walking the graph).
    /// `plan_cache` may be shared with other testers over the same SDFG
    /// pair — the parallel fuzzer binds every worker's tester of one
    /// instance to one cache, so state plans and compiled tasklet programs
    /// are built once, not per thread (nullptr creates a private cache).
    DifferentialTester(const ir::SDFG& original, const ir::SDFG& transformed,
                       std::set<std::string> system_state, DiffConfig config = {},
                       interp::PlanCachePtr plan_cache = nullptr,
                       const ValidationResult* prevalidated = nullptr);

    /// Not copyable/movable: a bound tester may point into its own
    /// owned_system_state_, which a generated copy would leave dangling.
    /// The scheduler pools testers via unique_ptr (see TesterCache).
    DifferentialTester(const DifferentialTester&) = delete;
    DifferentialTester& operator=(const DifferentialTester&) = delete;

    /// Rebinds this tester to a different instance.  The interpreters keep
    /// their scratch arenas but swap plan caches (per-interpreter memos are
    /// dropped), so the first trial after a rebind pays plan-lookup cost and
    /// steady state is as fast as a freshly constructed tester.  `original`,
    /// `transformed` and `system_state` are captured by reference and must
    /// outlive the binding; `prevalidated` (when given) is copied.
    void bind(const ir::SDFG& original, const ir::SDFG& transformed,
              const std::set<std::string>& system_state, interp::PlanCachePtr plan_cache,
              const ValidationResult* prevalidated = nullptr);

    /// Whether the bound transformed graph passed validation.
    bool transformed_valid() const { return validation_.valid; }

    /// Validation failure message (empty when transformed_valid()).
    const std::string& validation_error() const { return validation_.error; }

    /// Runs one trial on a sampled input configuration.  Requires a bound
    /// instance (common::Error otherwise).
    TrialOutcome run_trial(const interp::Context& inputs);

private:
    const ir::SDFG* original_ = nullptr;     ///< Bound original side.
    const ir::SDFG* transformed_ = nullptr;  ///< Bound transformed side.
    /// Bound system-state container set (points at owned_system_state_ when
    /// constructed with an owning set).
    const std::set<std::string>* system_state_ = nullptr;
    std::set<std::string> owned_system_state_;  ///< Backing for the owning ctor.
    DiffConfig config_;                         ///< Comparison + exec settings.
    ValidationResult validation_;               ///< Of the bound transformed graph.
    interp::Interpreter interp_original_;       ///< Original-side interpreter.
    interp::Interpreter interp_transformed_;    ///< Transformed-side interpreter.
    /// Coverage instrumentation of the bound original side (only populated
    /// when config_.exec.coverage): the shared atlas keys the per-trial
    /// bitmap the original-side interpreter marks into.
    std::shared_ptr<const feedback::CovAtlas> atlas_;
    feedback::CoverageMap cov_map_;  ///< Reset per trial, read after Ok runs.
};

/// Bounded, thread-safe cache of idle DifferentialTesters, keyed by the
/// instance they are bound to.
///
/// The audit-wide scheduler's workers check their execution context in here
/// whenever they switch instances and check one out for the instance they
/// are about to run:
///  * a *hit* returns a tester already bound to that instance — warm plans,
///    no binding work at all;
///  * a *rebind* repurposes the least recently released idle tester: its
///    interpreters keep their scratch arenas and only swap plan caches;
///  * a *build* (empty cache) constructs a tester from scratch.
///
/// `bound` caps the number of *idle* testers retained; testers checked out
/// on a worker are never counted or touched, so eviction only ever destroys
/// idle contexts.  All operations are mutex-guarded (they happen once per
/// instance switch, not per trial).
class TesterCache {
public:
    /// Cache retaining at most `bound` idle testers, constructing new ones
    /// with `config`.
    TesterCache(std::size_t bound, DiffConfig config)
        : bound_(bound), config_(std::move(config)) {}

    /// Cache-behaviour counters (monotonic over the cache's lifetime).
    struct Stats {
        int built = 0;      ///< Testers constructed from scratch.
        int hits = 0;       ///< Acquires satisfied by a same-instance idle tester.
        int rebinds = 0;    ///< Acquires that repurposed an idle tester (LRU).
        int evictions = 0;  ///< Idle testers destroyed over the bound.
    };

    /// Checks out a tester for `instance`.  `bind_fn` is invoked (with the
    /// tester to bind) only when the returned tester is not already bound to
    /// that instance — i.e. on rebinds and builds, never on hits.
    std::unique_ptr<DifferentialTester> acquire(
        std::uint64_t instance, const std::function<void(DifferentialTester&)>& bind_fn);

    /// Checks `tester` back in as idle for `instance`; destroys it instead
    /// when the idle set is at the bound.
    void release(std::unique_ptr<DifferentialTester> tester, std::uint64_t instance);

    /// Snapshot of the counters.
    Stats stats() const;

    /// Idle testers currently retained (always <= the bound).
    std::size_t idle_count() const;

private:
    /// One idle tester and the instance it is still bound to.
    struct Entry {
        std::unique_ptr<DifferentialTester> tester;  ///< The idle context.
        std::uint64_t instance = 0;                  ///< Its current binding.
        std::uint64_t stamp = 0;  ///< Release order (LRU victim selection).
    };

    mutable std::mutex mutex_;  ///< Guards idle_, clock_, stats_.
    const std::size_t bound_;   ///< Idle-tester capacity.
    const DiffConfig config_;   ///< Settings for built testers.
    std::vector<Entry> idle_;   ///< The idle set.
    std::uint64_t clock_ = 0;   ///< Monotonic release stamp.
    Stats stats_;               ///< Lifetime counters.
};

}  // namespace ff::core
