// Differential testing of a cutout against its transformed version (Sec. 5).
//
// A trial runs the same input configuration through both programs and
// compares the system state.  Verdict taxonomy mirrors the paper:
//  * SemanticsChanged — system state differs beyond the threshold (or
//    bitwise when threshold <= 0);
//  * TransformedCrash / TransformedHang — "the transformed program crashes
//    or hangs while the original does not";
//  * InvalidCode — the transformation raised while being applied, or
//    produced a graph that fails validation (Table 2's third class);
//  * Uninteresting — the *original* cutout rejected the input (both-crash
//    trials are resampled, not reported).
#pragma once

#include <optional>
#include <set>
#include <string>

#include "interp/interpreter.h"
#include "ir/sdfg.h"

namespace ff::core {

enum class Verdict {
    Pass,
    SemanticsChanged,
    TransformedCrash,
    TransformedHang,
    InvalidCode,
    Uninteresting,
};

const char* verdict_name(Verdict v);

struct TrialOutcome {
    Verdict verdict = Verdict::Pass;
    std::string detail;
};

struct DiffConfig {
    /// Relative/absolute comparison threshold; <= 0 means bitwise (Sec. 5.1,
    /// default 1e-5 as in the paper).
    double threshold = 1e-5;
    interp::ExecConfig exec;
};

/// Outcome of validating a transformed graph, computable once and shared
/// across the per-thread testers of one fuzzing instance.
struct ValidationResult {
    bool valid = true;
    std::string error;

    static ValidationResult of(const ir::SDFG& transformed);
};

class DifferentialTester {
public:
    /// Validates `transformed` once up front (pass `prevalidated` to reuse a
    /// ValidationResult computed elsewhere instead of re-walking the graph).
    /// `plan_cache` may be shared with other testers over the same SDFG
    /// pair — the parallel fuzzer constructs one tester per worker thread
    /// against one cache, so state plans and compiled tasklet programs are
    /// built once, not per thread (nullptr creates a private cache).
    DifferentialTester(const ir::SDFG& original, const ir::SDFG& transformed,
                       std::set<std::string> system_state, DiffConfig config = {},
                       interp::PlanCachePtr plan_cache = nullptr,
                       const ValidationResult* prevalidated = nullptr);

    bool transformed_valid() const { return valid_; }
    const std::string& validation_error() const { return validation_error_; }

    /// Runs one trial on a sampled input configuration.
    TrialOutcome run_trial(const interp::Context& inputs);

private:
    const ir::SDFG& original_;
    const ir::SDFG& transformed_;
    std::set<std::string> system_state_;
    DiffConfig config_;
    bool valid_ = true;
    std::string validation_error_;
    interp::Interpreter interp_original_;
    interp::Interpreter interp_transformed_;
};

}  // namespace ff::core
