// Reproducer serialization: "a fully reproducible, minimal test case
// including inputs that can aid in debugging transformations" (Sec. 1).
//
// A test case bundles the original cutout, its transformed counterpart, the
// system-state container list, and the exact failing input configuration
// (symbols + buffers).  Loading it back allows re-running the failing trial
// on a workstation without the original application.
#pragma once

#include <set>
#include <string>

#include "common/json.h"
#include "core/cutout.h"
#include "interp/interpreter.h"

namespace ff::core {

struct FuzzReport;  // fuzzer.h

common::Json buffer_to_json(const interp::Buffer& buffer);
interp::Buffer buffer_from_json(const common::Json& j);

common::Json context_to_json(const interp::Context& ctx);
interp::Context context_from_json(const common::Json& j);

common::Json testcase_to_json(const Cutout& cutout, const ir::SDFG& transformed,
                              const interp::Context& inputs, const std::string& transformation,
                              const std::string& verdict, const std::string& detail);

struct LoadedTestCase {
    ir::SDFG original;
    ir::SDFG transformed;
    interp::Context inputs;
    std::set<std::string> system_state;
    std::string transformation;
    std::string verdict;
    std::string detail;
};

LoadedTestCase testcase_from_json(const common::Json& j);

/// Writes the test case into `dir` with a content-derived filename; returns
/// the path (empty on I/O failure).
std::string save_testcase_artifact(const std::string& dir, const Cutout& cutout,
                                   const ir::SDFG& transformed, const interp::Context& inputs,
                                   const FuzzReport& report);

}  // namespace ff::core
