// Reproducer serialization: "a fully reproducible, minimal test case
// including inputs that can aid in debugging transformations" (Sec. 1).
//
// A test case bundles the original cutout, its transformed counterpart, the
// system-state container list, and the exact failing input configuration
// (symbols + buffers).  Loading it back allows re-running the failing trial
// on a workstation without the original application.
#pragma once

#include <set>
#include <string>

#include "common/json.h"
#include "core/cutout.h"
#include "core/diff_test.h"
#include "interp/interpreter.h"

namespace ff::core {

struct FuzzReport;   // fuzzer.h
struct TrialRecord;  // report.h

common::Json buffer_to_json(const interp::Buffer& buffer);
interp::Buffer buffer_from_json(const common::Json& j);

common::Json context_to_json(const interp::Context& ctx);
interp::Context context_from_json(const common::Json& j);

/// Wire form of one trial slot (the unit of the sharded-audit record
/// stream, src/shard): kind, and for failing trials the verdict, detail and
/// exact inputs — everything merge_trial_records and artifact saving read.
/// Lossless: record -> JSON -> record round-trips byte-identically
/// (tests/test_shard.cpp).
common::Json trial_record_to_json(const TrialRecord& record);
TrialRecord trial_record_from_json(const common::Json& j);

/// Wire form of a merged per-instance report.  Wall-clock fields
/// (`seconds`, `trials_per_second`, `threads`) are serialized too — callers
/// that need the canonical (machine-independent) form zero them first, see
/// shard::canonicalize_report.
common::Json fuzz_report_to_json(const FuzzReport& report);
FuzzReport fuzz_report_from_json(const common::Json& j);

common::Json testcase_to_json(const Cutout& cutout, const ir::SDFG& transformed,
                              const interp::Context& inputs, const std::string& transformation,
                              const std::string& verdict, const std::string& detail);

struct LoadedTestCase {
    ir::SDFG original;
    ir::SDFG transformed;
    interp::Context inputs;
    std::set<std::string> system_state;
    std::string transformation;
    std::string verdict;
    std::string detail;
};

LoadedTestCase testcase_from_json(const common::Json& j);

/// Reads and parses a test-case JSON file; throws common::Error (unreadable
/// file) or common::ParseError (malformed JSON).  The single loader path
/// shared by `ffaudit replay` and examples/replay_testcase.
LoadedTestCase load_testcase_file(const std::string& path);

/// Outcome of re-running a loaded test case through a fresh differential
/// tester.
struct ReplayResult {
    TrialOutcome outcome;     ///< The replayed trial's verdict + detail.
    bool reproduced = false;  ///< Replayed verdict matches the recorded one.
};

/// Replays `tc` (both sides, differential comparison) and checks the
/// verdict against the recorded one.
ReplayResult replay_testcase(const LoadedTestCase& tc, DiffConfig config = {});

/// Writes the test case into `dir` with a content-derived filename; returns
/// the path.  On I/O failure returns "" and, when `error` is non-null,
/// stores a description there (the fuzzer surfaces it as
/// FuzzReport::artifact_error) — an empty return is never silent.
std::string save_testcase_artifact(const std::string& dir, const Cutout& cutout,
                                   const ir::SDFG& transformed, const interp::Context& inputs,
                                   const FuzzReport& report, std::string* error = nullptr);

}  // namespace ff::core
