// Quickstart: the complete FuzzyFlow workflow in ~80 lines.
//
//  1. Build a program in the parametric dataflow IR (y[i] = x[i] * 2).
//  2. Pick a transformation — here loop tiling with the Fig. 2 off-by-one
//     bug planted — and find where it applies.
//  3. Hand program + instance to the fuzzer: it extracts a cutout, minimizes
//     the input configuration, derives sampling constraints, and
//     differentially fuzzes original vs transformed cutout.
//  4. Inspect the verdict and the serialized minimal reproducer.
//
// Run:  ./quickstart
#include <cstdio>

#include "core/fuzzer.h"
#include "transforms/map_tiling.h"
#include "workloads/builders.h"

using namespace ff;

int main() {
    // --- 1. A tiny parametric program: y = x * 2 over N elements. ---
    ir::SDFG program("quickstart");
    program.add_symbol("N");
    const sym::ExprPtr n = sym::symb("N");
    program.add_array("x", ir::DType::F64, {n});  // non-transient: program input
    program.add_array("y", ir::DType::F64, {n});  // non-transient: program output
    ir::State& state = program.state(program.add_state("main", /*is_start=*/true));
    workloads::ew_unary(program, state, state.add_access("x"), "y", "o = i * 2.0");
    program.validate();
    std::printf("program:\n%s\n", program.to_string().c_str());

    // --- 2. A transformation with a planted bug: tiling without remainder
    //        handling (correct only when N %% tile == 0). ---
    xform::MapTiling buggy_tiling(4, xform::MapTiling::Variant::NoRemainder);
    const auto matches = buggy_tiling.find_matches(program);
    std::printf("found %zu applicable instance(s); testing: %s\n", matches.size(),
                matches.at(0).description.c_str());

    // --- 3. Fuzz the instance. ---
    core::FuzzConfig config;
    config.max_trials = 50;
    config.sampler.size_max = 16;          // sizes sampled from [1, 16]
    config.cutout.defaults = {{"N", 16}};  // concretization for analyses
    config.artifact_dir = ".";             // dump the reproducer here
    core::Fuzzer fuzzer(config);
    const core::FuzzReport report = fuzzer.test_instance(program, buggy_tiling, matches.at(0));

    // --- 4. Results. ---
    std::printf("verdict: %s after %d trial(s)  [%s]\n", core::verdict_name(report.verdict),
                report.trials, report.detail.c_str());
    std::printf("cutout: %zu of %zu dataflow nodes; input volume %lld elements\n",
                report.cutout_nodes, report.program_nodes,
                static_cast<long long>(report.input_volume));
    if (!report.artifact_path.empty())
        std::printf("minimal reproducer written to %s\n", report.artifact_path.c_str());

    // A correct transformation passes the same pipeline.
    xform::MapTiling correct_tiling(4, xform::MapTiling::Variant::Correct);
    const core::FuzzReport clean =
        fuzzer.test_instance(program, correct_tiling, correct_tiling.find_matches(program).at(0));
    std::printf("correct tiling verdict: %s over %d trials\n",
                core::verdict_name(clean.verdict), clean.trials);
    return report.failed() && !clean.failed() ? 0 : 1;
}
