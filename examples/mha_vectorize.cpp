// Sec. 6.1 walkthrough: testing the vectorization of BERT-MHA's scaling
// loop nest, with the minimum input-flow cut shrinking the input space.
//
// Run:  ./mha_vectorize
#include <cstdio>

#include "core/fuzzer.h"
#include "core/mincut.h"
#include "transforms/vectorization.h"
#include "workloads/mha.h"

using namespace ff;

int main() {
    const ir::SDFG program = workloads::build_mha_scale();
    program.validate();

    xform::Vectorization vectorize(4);
    const auto matches = vectorize.find_matches(program);
    std::printf("vectorizable loop nests: %zu (%s)\n", matches.size(),
                matches.at(0).description.c_str());

    // Step-by-step: change isolation -> cutout -> min input-flow cut.
    core::CutoutOptions opts;
    opts.defaults = workloads::mha_defaults(/*sm=*/32);
    const xform::ChangeSet delta = vectorize.affected_nodes(program, matches.at(0));
    const core::Cutout initial = core::extract_cutout(program, delta, opts);
    std::printf("initial cutout inputs:");
    for (const auto& name : initial.input_config) std::printf(" %s", name.c_str());
    std::printf("  (%lld elements)\n",
                static_cast<long long>(initial.concrete_input_volume(opts.defaults)));

    const core::MinCutResult mc =
        core::minimize_input_configuration(program, delta, initial, opts);
    std::printf("after min input-flow cut:");
    for (const auto& name : mc.cutout.input_config) std::printf(" %s", name.c_str());
    std::printf("  (%lld elements, %.0f%% smaller — the paper reports 75%%)\n",
                static_cast<long long>(mc.volume_after),
                100.0 * (1.0 - static_cast<double>(mc.volume_after) /
                                   static_cast<double>(mc.volume_before)));

    // Fuzz: vectorization is input-size dependent (extent % width != 0).
    core::FuzzConfig config;
    config.max_trials = 50;
    config.sampler.size_max = 8;
    config.cutout.defaults = workloads::mha_defaults(/*sm=*/8);
    core::Fuzzer fuzzer(config);
    const core::FuzzReport report = fuzzer.test_instance(program, vectorize, matches.at(0));
    std::printf("verdict: %s after %d trial(s): %s\n", core::verdict_name(report.verdict),
                report.trials, report.detail.c_str());
    std::printf("(the transformation is correct exactly when SM %% 4 == 0 — the paper's\n"
                " 'input dependent' failure class)\n");
    return report.failed() ? 0 : 1;
}
