// Reproducer replay: re-runs a failing test case emitted by the fuzzer.
//
// This is the paper's debugging workflow (Sec. 1/6.4): a transformation bug
// found while optimizing a supercomputer-scale application is shipped as a
// small JSON file — cutout, transformed cutout, system-state list, and the
// exact fault-inducing inputs — and replayed interactively on a consumer
// workstation.
//
// Run:  ./replay_testcase <testcase.json>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/diff_test.h"
#include "core/testcase_io.h"

using namespace ff;

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <testcase.json>\n", argv[0]);
        return 2;
    }
    std::ifstream in(argv[1]);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", argv[1]);
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();

    const core::LoadedTestCase tc = core::testcase_from_json(common::Json::parse(text.str()));
    std::printf("transformation: %s\n", tc.transformation.c_str());
    std::printf("recorded verdict: %s (%s)\n", tc.verdict.c_str(), tc.detail.c_str());
    std::printf("system state:");
    for (const auto& name : tc.system_state) std::printf(" %s", name.c_str());
    std::printf("\ninputs: %zu buffer(s), %zu symbol(s)\n", tc.inputs.buffers.size(),
                tc.inputs.symbols.size());
    for (const auto& [name, value] : tc.inputs.symbols)
        std::printf("  %s = %lld\n", name.c_str(), static_cast<long long>(value));

    core::DifferentialTester tester(tc.original, tc.transformed, tc.system_state);
    const core::TrialOutcome outcome = tester.run_trial(tc.inputs);
    std::printf("replayed verdict: %s\n", core::verdict_name(outcome.verdict));
    if (!outcome.detail.empty()) std::printf("  %s\n", outcome.detail.c_str());

    const bool reproduced = std::string(core::verdict_name(outcome.verdict)) == tc.verdict;
    std::printf("%s\n", reproduced ? "REPRODUCED" : "DID NOT REPRODUCE");
    return reproduced ? 0 : 1;
}
