// Reproducer replay: re-runs a failing test case emitted by the fuzzer.
//
// This is the paper's debugging workflow (Sec. 1/6.4): a transformation bug
// found while optimizing a supercomputer-scale application is shipped as a
// small JSON file — cutout, transformed cutout, system-state list, and the
// exact fault-inducing inputs — and replayed interactively on a consumer
// workstation.  The same loader and replay path back `ffaudit replay`
// (core::load_testcase_file / core::replay_testcase); this example only
// adds the pretty-printing.
//
// Run:  ./example_replay_testcase <testcase.json>
#include <cstdio>
#include <string>

#include "core/testcase_io.h"

using namespace ff;

namespace {

int usage(const char* prog, const char* detail) {
    if (detail) std::fprintf(stderr, "%s: %s\n", prog, detail);
    std::fprintf(stderr,
                 "usage: %s <testcase.json>\n"
                 "\n"
                 "Replays a reproducer artifact written by the fuzzer (FuzzConfig::\n"
                 "artifact_dir) or `ffaudit run`/`ffaudit merge --artifact-dir`: runs the\n"
                 "recorded inputs through both the original and the transformed cutout and\n"
                 "checks the differential verdict against the recorded one.\n"
                 "\n"
                 "exit status: 0 reproduced, 1 did not reproduce, 2 bad usage or\n"
                 "unreadable test case\n",
                 prog);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) return usage(argv[0], argc < 2 ? "missing test case file" : "too many arguments");
    const std::string path = argv[1];
    if (path == "--help" || path == "-h") return usage(argv[0], nullptr);

    core::LoadedTestCase tc;
    try {
        tc = core::load_testcase_file(path);
    } catch (const std::exception& e) {
        return usage(argv[0], e.what());
    }

    std::printf("transformation: %s\n", tc.transformation.c_str());
    std::printf("recorded verdict: %s (%s)\n", tc.verdict.c_str(), tc.detail.c_str());
    std::printf("system state:");
    for (const auto& name : tc.system_state) std::printf(" %s", name.c_str());
    std::printf("\ninputs: %zu buffer(s), %zu symbol(s)\n", tc.inputs.buffers.size(),
                tc.inputs.symbols.size());
    for (const auto& [name, value] : tc.inputs.symbols)
        std::printf("  %s = %lld\n", name.c_str(), static_cast<long long>(value));

    const core::ReplayResult replay = core::replay_testcase(tc);
    std::printf("replayed verdict: %s\n", core::verdict_name(replay.outcome.verdict));
    if (!replay.outcome.detail.empty()) std::printf("  %s\n", replay.outcome.detail.c_str());
    std::printf("%s\n", replay.reproduced ? "REPRODUCED" : "DID NOT REPRODUCE");
    return replay.reproduced ? 0 : 1;
}
