// Sec. 6.3 walkthrough: auditing a transformation pass list over a kernel
// suite and printing the Table 2-style summary.
//
// Run:  ./npbench_audit [kernel ...]
//       (default: a representative 8-kernel slice; pass names to select)
#include <cstdio>
#include <string>
#include <vector>

#include "core/fuzzer.h"
#include "core/report.h"
#include "transforms/registry.h"
#include "workloads/npbench.h"

using namespace ff;

int main(int argc, char** argv) {
    std::vector<std::string> kernels;
    for (int i = 1; i < argc; ++i) kernels.push_back(argv[i]);
    if (kernels.empty())
        kernels = {"gemm",  "atax",          "l2norm",   "ew_chain",
                   "jacobi_1d", "alias_stages", "scalar_pipeline", "go_fast"};

    core::FuzzConfig config;
    config.max_trials = 10;
    config.diff.exec.max_state_transitions = 2000;
    config.sampler.size_max = 6;
    config.cutout.defaults = workloads::npbench_defaults();
    core::Fuzzer fuzzer(config);
    const auto passes = xform::builtin_transformations({.table2_bugs = true});

    std::vector<core::FuzzReport> reports;
    for (const auto& name : kernels) {
        std::printf("auditing %s ...\n", name.c_str());
        const ir::SDFG program = workloads::build_npbench_kernel(name);
        for (const auto& report : fuzzer.audit(program, passes)) {
            if (report.failed())
                std::printf("  FLAGGED %s: %s (%s)\n", report.transformation.c_str(),
                            report.match_description.c_str(),
                            core::verdict_name(report.verdict));
            reports.push_back(report);
        }
    }

    std::printf("\n%s", core::audit_table(core::summarize_audit(reports)).c_str());
    return 0;
}
