// Sec. 6.2 walkthrough: testing an optimization of the distributed SDDMM on
// a single node.
//
// The program allgathers the dense operand across ranks; the cutout of a
// tiling on the local contraction excludes the collective, so the test runs
// on one rank with the gathered matrix fuzzed as a plain input.
//
// Run:  ./distributed_sddmm
#include <cstdio>

#include "common/rng.h"
#include "core/fuzzer.h"
#include "interp/multirank.h"
#include "transforms/map_tiling.h"
#include "workloads/sddmm.h"

using namespace ff;

namespace {

interp::Context rank_inputs(const ir::SDFG& p, const sym::Bindings& bindings,
                            std::uint64_t seed) {
    interp::Context ctx;
    ctx.symbols = bindings;
    common::Rng rng(seed);
    for (const auto& [name, desc] : p.containers()) {
        if (desc.transient) continue;
        interp::Buffer buf(desc.dtype, desc.concrete_shape(bindings));
        for (std::int64_t i = 0; i < buf.size(); ++i)
            buf.store(i, interp::Value::from_double(rng.uniform_double(-1, 1)));
        ctx.buffers.emplace(name, std::move(buf));
    }
    return ctx;
}

}  // namespace

int main() {
    const ir::SDFG program = workloads::build_sddmm();
    program.validate();

    // The distributed program runs on 4 simulated ranks.
    const int ranks = 4;
    const sym::Bindings bindings = workloads::sddmm_defaults(6, 4, 4, ranks);
    std::vector<interp::Context> contexts;
    for (int r = 0; r < ranks; ++r)
        contexts.push_back(rank_inputs(program, bindings, 100 + static_cast<std::uint64_t>(r)));
    interp::MultiRankInterpreter multi(ranks);
    const auto run = multi.run(program, contexts);
    std::printf("multi-rank run (%d ranks): %s\n", ranks, run.ok() ? "ok" : run.message.c_str());

    // Optimize the local dense contraction and test it via a cutout.
    xform::MapTiling tiling(4, xform::MapTiling::Variant::Correct);
    const auto matches = tiling.find_matches(program);
    const xform::Match* contraction = nullptr;
    for (const auto& m : matches)
        if (m.description.find("'sddmm_mm'") != std::string::npos) contraction = &m;
    if (!contraction) return 1;

    core::FuzzConfig config;
    config.max_trials = 20;
    config.sampler.size_max = 6;
    config.cutout.defaults = bindings;
    core::Fuzzer fuzzer(config);
    const core::FuzzReport report = fuzzer.test_instance(program, tiling, *contraction);

    std::printf("cutout excludes communication; testing ran on a single rank\n");
    std::printf("verdict: %s over %d trials (cutout %zu of %zu nodes)\n",
                core::verdict_name(report.verdict), report.trials, report.cutout_nodes,
                report.program_nodes);
    return report.verdict == core::Verdict::Pass ? 0 : 1;
}
