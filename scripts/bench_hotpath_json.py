#!/usr/bin/env python3
"""Fold bench_interp_hotpath output into a BENCH_hotpath.json baseline.

The bench prints machine-readable lines of the form

    BENCH_KV key=value [key=value ...]

alongside its human-readable report.  This script collects every such pair
into one flat JSON object so CI can upload a stable baseline artifact and
local runs can diff against it:

    ./build/bench_interp_hotpath | python3 scripts/bench_hotpath_json.py - BENCH_hotpath.json

Values parse as int, then float, then string.  Exits non-zero when the input
contains no BENCH_KV lines (e.g. the bench crashed before the report) or a
required key is missing, so a silently-empty baseline cannot pass CI.
"""

import json
import sys

REQUIRED_KEYS = (
    "reference_exec_per_s",
    "generic_exec_per_s",
    "specialized_exec_per_s",
    "batched_exec_per_s",
    "specialization_speedup",
    "batched_speedup",
    "kernel_launches",
    "segment_launches",
    "flat_f64_batch_speedup",
    "flat_f32_batch_speedup",
    "flat_i64_batch_speedup",
)


def parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def collect(lines) -> dict:
    data = {}
    for line in lines:
        if not line.startswith("BENCH_KV "):
            continue
        for pair in line[len("BENCH_KV "):].split():
            key, sep, value = pair.partition("=")
            if sep:
                data[key] = parse_value(value)
    return data


def main(argv) -> int:
    if len(argv) != 3:
        print(f"usage: {argv[0]} <bench-output.txt | -> <out.json>", file=sys.stderr)
        return 2
    source = sys.stdin if argv[1] == "-" else open(argv[1], encoding="utf-8")
    with source:
        data = collect(source)
    if not data:
        print("error: no BENCH_KV lines found in input", file=sys.stderr)
        return 1
    missing = [key for key in REQUIRED_KEYS if key not in data]
    if missing:
        print(f"error: missing keys in bench output: {', '.join(missing)}", file=sys.stderr)
        return 1
    with open(argv[2], "w", encoding="utf-8") as out:
        json.dump(data, out, indent=2, sort_keys=True)
        out.write("\n")
    print(f"wrote {argv[2]} ({len(data)} keys)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
