#!/usr/bin/env python3
"""Check that internal markdown links in docs/*.md and README.md resolve.

Validates every `[text](target)` link whose target is not an external URL:
the referenced file must exist (relative to the linking file), and when the
target carries a `#fragment` pointing into a markdown file, a heading with
the matching GitHub-style anchor must exist there.  Exits non-zero with one
line per broken link (the CI docs job runs this).
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"#{1,6}\s+(.*)")


def slugify(heading: str) -> str:
    """GitHub-style heading anchor: lowercase, drop punctuation, hyphenate."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_]", "", slug)
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def markdown_lines(path: pathlib.Path):
    """Yields (line_number, line) outside fenced code blocks."""
    in_code = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if line.lstrip().startswith("```"):
            in_code = not in_code
            continue
        if not in_code:
            yield number, line


def anchors_of(path: pathlib.Path) -> set:
    anchors = set()
    for _, line in markdown_lines(path):
        match = HEADING_RE.match(line)
        if match:
            anchors.add(slugify(match.group(1)))
    return anchors


def check_file(path: pathlib.Path, root: pathlib.Path) -> list:
    errors = []
    rel = path.relative_to(root)
    for number, line in markdown_lines(path):
        for target in LINK_RE.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            dest = path if not path_part else (path.parent / path_part).resolve()
            if path_part and not dest.exists():
                errors.append(f"{rel}:{number}: broken link target '{target}'")
                continue
            if fragment and dest.suffix == ".md":
                if slugify(fragment) not in anchors_of(dest):
                    errors.append(f"{rel}:{number}: no heading for anchor '{target}'")
    return errors


def main() -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    files = sorted((root / "docs").glob("*.md")) + [root / "README.md"]
    errors = []
    for path in files:
        errors.extend(check_file(path, root))
    for error in errors:
        print(error)
    print(f"checked {len(files)} files: "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} broken links)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
