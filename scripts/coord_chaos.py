#!/usr/bin/env python3
"""Coordinator chaos smoke: crash + stall workers, demand byte-identical reports.

Drives `ffaudit serve` with coordinator-spawned worker processes under
injected faults and checks the fault-tolerance acceptance bar end to end:

1. single-process reference: `ffaudit run` (canonical report + artifacts);
2. for each worker count in {1, 2, 4}: `ffaudit serve --spawn-workers N`
   where worker 0 is SIGKILLed mid-shard (`kill-after-units=3`, leaving a
   torn record tail for the replacement to salvage) and worker 1 — when
   there is one — stalls far past its lease (`delay-lease-ms=4000`, forcing
   an expiry and a re-issue);
3. every serve run must exit 0, report byte-identical to step 1, artifacts
   byte-identical to step 1, and its summary line must prove the faults
   actually fired (a worker was lost and a replacement spawned);
4. poison-unit quarantine: two workers under hostile-trial faults — one
   spins forever after its first checkpoint (heartbeats keep flowing, only
   the wall-clock watchdog catches it, exit 113) and one allocates without
   bound (caught by RLIMIT_AS, exit 114) — with `--max-failures 1`, so each
   death permanently fails its shard.  serve must quarantine the blamed
   units, finish the audit, exit 9, name the quarantined units, and still
   produce a report byte-identical to step 1 (the blamed units are benign:
   the faults lived in the workers, not the trials).

With --net the scenario changes to network chaos: the coordinator listens
on TCP (127.0.0.1, kernel-assigned port) and interposes the deterministic
frame-fault proxy (`--net-fault`) between itself and its spawned workers —
periodic frame drops, per-frame delay, duplication, one corrupted frame
and one timed partition with heal — at the same worker counts, with the
same byte-identical acceptance bar; severed connections must come back as
session *resumes*, not lease expirations.

Usage:  python3 scripts/coord_chaos.py --ffaudit build/ffaudit [--net]
Exits non-zero on the first violated expectation.
"""

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

JOB_FLAGS = [
    "--workload", "gemm",
    "--passes", "table2",
    "--trials", "10",
    "--size-max", "6",
    "--max-transitions", "2000",
]

WORKER_COUNTS = [1, 2, 4]


def fail(message: str) -> None:
    print(f"coord_chaos: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run(cmd, expect_rc=0, timeout=600) -> str:
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
    print(f"$ {' '.join(str(c) for c in cmd)}")
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != expect_rc:
        fail(f"expected exit {expect_rc}, got {proc.returncode}")
    return proc.stdout + proc.stderr


def dir_bytes(path: Path) -> dict:
    return {p.name: p.read_bytes() for p in sorted(path.iterdir())} if path.exists() else {}


def summary_counts(output: str) -> dict:
    """Parses the `served N shard(s): ...` summary into named counters."""
    m = re.search(
        r"served (\d+) shard\(s\): (\d+) lease\(s\), (\d+) expiration\(s\), "
        r"(\d+) requeue\(s\), (\d+) hedge\(s\), (\d+) duplicate completion\(s\) "
        r"\((\d+) byte-verified\), (\d+) worker\(s\) seen, (\d+) lost, (\d+) spawned, "
        r"(\d+) quarantined unit\(s\), (\d+) split shard\(s\), "
        r"(\d+) session\(s\) parked, (\d+) resumed, (\d+) grace-expired",
        output)
    if not m:
        fail("serve printed no summary line")
    keys = ("shards", "leases", "expirations", "requeues", "hedges",
            "duplicates", "verified", "seen", "lost", "spawned",
            "quarantined", "split", "parked", "resumed", "grace_expired")
    return dict(zip(keys, (int(g) for g in m.groups())))


def net_counts(output: str) -> dict:
    """Parses the `net faults: ...` proxy summary into named counters."""
    m = re.search(
        r"net faults: (\d+) frame\(s\) forwarded, (\d+) dropped, (\d+) duplicated, "
        r"(\d+) corrupted, (\d+) partition\(s\)",
        output)
    if not m:
        fail("serve printed no net-faults summary line")
    keys = ("forwarded", "dropped", "duplicated", "corrupted", "partitions")
    return dict(zip(keys, (int(g) for g in m.groups())))


def net_chaos(ffaudit: str, root: Path, ref_report: Path, ref_artifacts: dict) -> None:
    """--net mode: a TCP coordinator behind the deterministic frame proxy.

    Every network fault class at once — periodic frame loss, per-frame
    delay, duplication, one corrupted frame (the receiver's CRC must turn
    it into a clean disconnect) and one timed partition with heal — at
    worker counts {1, 2, 4}.  Each run must exit 0, prove via the summary
    that the faults fired and that broken connections were resumed (not
    expired), and produce a report and artifacts byte-identical to the
    single-process reference.
    """
    for n in WORKER_COUNTS:
        report = root / f"report-net{n}.json"
        art = root / f"art-net{n}"
        cmd = [ffaudit, "serve", *JOB_FLAGS,
               "--shards", "4",
               "--checkpoint-interval", "2",
               "--records-dir", root / f"records-net{n}",
               "--artifact-dir", art,
               "--out", report,
               "--spawn-workers", str(n),
               "--listen", "127.0.0.1:0",
               "--net-fault", ("drop-frame-every-n=7,delay-frame-ms=5,"
                               "duplicate-frame=9,corrupt-frame-byte=15,"
                               "partition-after-units=3,heal-ms=1500"),
               # Leases stay alive through the partition via the grace
               # window; dropped replies re-request fast.
               "--lease-ms", "3000",
               "--heartbeat-ms", "300",
               "--session-grace-ms", "8000",
               "--worker-reply-timeout-ms", "2000",
               "--straggler-factor", "50",
               "--linger-ms", "8000"]
        out = run(cmd, timeout=900)

        counts = summary_counts(out)
        net = net_counts(out)
        if counts["shards"] != 4:
            fail(f"net n={n}: merged {counts['shards']} shards, wanted 4")
        if net["dropped"] < 1 or net["duplicated"] < 1:
            fail(f"net n={n}: proxy dropped {net['dropped']}, duplicated "
                 f"{net['duplicated']} — the frame faults never fired")
        if net["corrupted"] != 1:
            fail(f"net n={n}: {net['corrupted']} corrupted frame(s), wanted exactly 1")
        if net["partitions"] != 1:
            fail(f"net n={n}: {net['partitions']} partition(s), wanted exactly 1")
        if counts["resumed"] < 1:
            fail(f"net n={n}: no session resumed — severed connections were "
                 "not spliced back onto their leases")

        if report.read_bytes() != ref_report.read_bytes():
            fail(f"net n={n}: report differs from the single-process report")
        if dir_bytes(art) != ref_artifacts:
            fail(f"net n={n}: reproducer artifacts differ from the single-process ones")
        print(f"coord_chaos: net n={n} byte-identical "
              f"({net['dropped']} dropped, {net['duplicated']} duplicated, "
              f"{net['corrupted']} corrupted, {net['partitions']} partition(s), "
              f"{counts['parked']} parked, {counts['resumed']} resumed)")

    print("coord_chaos: PASS (drop + delay + duplicate + corrupt + partition/heal "
          "over TCP at every worker count; reports byte-identical)")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--ffaudit", required=True, help="path to the ffaudit binary")
    parser.add_argument("--net", action="store_true",
                        help="network chaos instead: TCP transport through the "
                             "deterministic frame-fault proxy")
    args = parser.parse_args()
    ffaudit = args.ffaudit

    with tempfile.TemporaryDirectory(prefix="coord_chaos_") as tmp:
        root = Path(tmp)
        ref_report, ref_art = root / "report-single.json", root / "art-single"

        # 1. Single-process reference.
        run([ffaudit, "run", *JOB_FLAGS, "--out", ref_report, "--artifact-dir", ref_art])
        ref_artifacts = dir_bytes(ref_art)
        if not ref_artifacts:
            fail("reference run produced no reproducer artifacts — chaos job lost its teeth")

        if args.net:
            net_chaos(ffaudit, root, ref_report, ref_artifacts)
            return

        # 2. Coordinated runs under faults, at several worker counts.
        for n in WORKER_COUNTS:
            report = root / f"report-n{n}.json"
            art = root / f"art-n{n}"
            cmd = [ffaudit, "serve", *JOB_FLAGS,
                   "--shards", "4",
                   "--checkpoint-interval", "2",
                   "--records-dir", root / f"records-n{n}",
                   "--artifact-dir", art,
                   "--out", report,
                   "--spawn-workers", str(n),
                   # Tight leases so the stall visibly expires one, and an
                   # aggressive straggler factor so hedging gets exercise.
                   "--lease-ms", "1500",
                   "--heartbeat-ms", "300",
                   "--straggler-factor", "1.0",
                   "--linger-ms", "8000",
                   # Worker 0 dies by SIGKILL mid-shard, after its first
                   # durable checkpoint (interval 2, killed after 3 units).
                   "--worker-fault", "0=kill-after-units=3"]
            if n > 1:
                # Worker 1 stalls far past its lease before running.
                cmd += ["--worker-fault", "1=delay-lease-ms=4000"]
            out = run(cmd)

            counts = summary_counts(out)
            if counts["shards"] != 4:
                fail(f"n={n}: merged {counts['shards']} shards, wanted 4")
            if counts["lost"] < 1:
                fail(f"n={n}: no worker was lost — the kill fault never fired")
            if counts["spawned"] <= n:
                fail(f"n={n}: {counts['spawned']} spawns for {n} workers — "
                     "the killed worker was never replaced")
            if n > 1 and counts["expirations"] < 1:
                fail(f"n={n}: no lease expired — the stall fault never fired")
            if counts["quarantined"] != 0:
                fail(f"n={n}: {counts['quarantined']} unit(s) quarantined in a "
                     "scenario whose faults are all recoverable")

            # 3. The acceptance bar: bytes, not summaries.
            if report.read_bytes() != ref_report.read_bytes():
                fail(f"n={n}: coordinated report differs from the single-process report")
            if dir_bytes(art) != ref_artifacts:
                fail(f"n={n}: reproducer artifacts differ from the single-process ones")
            print(f"coord_chaos: n={n} byte-identical "
                  f"({counts['lost']} worker(s) lost, {counts['spawned']} spawned, "
                  f"{counts['expirations']} expiration(s), {counts['duplicates']} "
                  f"duplicate(s) byte-verified)")

        # 4. Poison-unit quarantine: a spinner (watchdog, exit 113) and a
        #    memory hog (RLIMIT_AS, exit 114), each permanently failing its
        #    shard at --max-failures 1.  The audit must still finish — with
        #    the blamed units quarantined, exit code 9, and a report that is
        #    byte-identical to the single-process one (the faults live in
        #    the workers, so every blamed unit is benign under re-run).
        report = root / "report-poison.json"
        art = root / "art-poison"
        out = run([ffaudit, "serve", *JOB_FLAGS,
                   "--shards", "4",
                   "--checkpoint-interval", "2",
                   "--records-dir", root / "records-poison",
                   "--artifact-dir", art,
                   "--out", report,
                   "--spawn-workers", "2",
                   "--lease-ms", "4000",
                   "--heartbeat-ms", "300",
                   "--linger-ms", "8000",
                   "--max-failures", "1",
                   "--worker-watchdog-ms", "600",
                   "--worker-rlimit-as", str(1 << 30),
                   "--worker-fault", "0=spin-after-units=1",
                   "--worker-fault", "1=hog-memory-after-units=1"],
                  expect_rc=9)
        counts = summary_counts(out)
        if counts["quarantined"] < 1:
            fail("poison: nothing was quarantined — the poison faults never fired")
        if counts["split"] < 1:
            fail("poison: no shard remainder was split and re-issued")
        if counts["lost"] < 2:
            fail(f"poison: only {counts['lost']} worker(s) lost — expected both "
                 "the spinner (watchdog) and the hog (rlimit) to die")
        if "quarantined units:" not in out:
            fail("poison: summary does not name the quarantined units")
        if report.read_bytes() != ref_report.read_bytes():
            fail("poison: quarantined report differs from the single-process report")
        if dir_bytes(art) != ref_artifacts:
            fail("poison: reproducer artifacts differ from the single-process ones")
        print(f"coord_chaos: poison byte-identical ({counts['quarantined']} unit(s) "
              f"quarantined, {counts['split']} split shard(s), exit 9)")

    print("coord_chaos: PASS (crash + stall at every worker count; poison units "
          "quarantined; reports byte-identical)")


if __name__ == "__main__":
    main()
