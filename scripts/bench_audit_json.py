#!/usr/bin/env python3
"""Fold bench_audit_throughput output into a BENCH_audit.json baseline.

Two sections feed the artifact:

1. The bench's BENCH_KV lines (audit-wide scheduler throughput: audit@1,
   audit@N, per-instance pools, scaling ratios, determinism check) —
   same convention as scripts/bench_hotpath_json.py.

2. A sharding section measured here by driving the `ffaudit` CLI as real
   subprocesses: a small npbench audit is planned and executed as 1 shard
   and as 4 shards (sequentially, so the numbers compare plan+run+merge
   overhead rather than parallelism), and the merged report is diffed
   byte-for-byte against the single-process `ffaudit run` output
   (`shard_report_identical`).

Usage:
    ./build/bench_audit_throughput | \
        python3 scripts/bench_audit_json.py - BENCH_audit.json --ffaudit build/ffaudit

Omit --ffaudit to skip the subprocess section (the bench keys alone then
must be present).  Exits non-zero when a required key is missing or the
shard/single-process reports diverge, so a silently-empty or
non-deterministic baseline cannot pass CI.
"""

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

BENCH_REQUIRED_KEYS = (
    "audit1_trials_per_s",
    "auditN_trials_per_s",
    "per_instance_trials_per_s",
    "audit_scaling",
    "audit_determinism_ok",
)

SHARD_REQUIRED_KEYS = (
    "shard1_seconds",
    "shard4_seconds",
    "shard_merge_seconds",
    "shard_report_identical",
)

JOB_FLAGS = [
    "--workload", "gemm",
    "--passes", "table2",
    "--trials", "10",
    "--size-max", "6",
    "--max-transitions", "2000",
]


def parse_value(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def collect(lines) -> dict:
    data = {}
    for line in lines:
        if not line.startswith("BENCH_KV "):
            continue
        for pair in line[len("BENCH_KV "):].split():
            key, sep, value = pair.partition("=")
            if sep:
                data[key] = parse_value(value)
    return data


def run(cmd) -> float:
    """Runs a subprocess (raising on failure); returns wall seconds."""
    t0 = time.monotonic()
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return time.monotonic() - t0


def sharded_run(ffaudit: str, root: Path, count: int) -> tuple[float, float, Path]:
    """plan + run-shard x count + merge; returns (run_seconds, merge_seconds,
    merged report path)."""
    plan_dir = root / f"plan{count}"
    rec_dir = root / f"rec{count}"
    report = root / f"report-shard{count}.json"
    run([ffaudit, "plan", *JOB_FLAGS, "--shards", str(count),
         "--checkpoint-interval", "16", "--out-dir", str(plan_dir)])
    run_seconds = 0.0
    for i in range(count):
        run_seconds += run([ffaudit, "run-shard", "--manifest",
                            str(plan_dir / f"shard-{i}.json"), "--records-dir", str(rec_dir)])
    merge_seconds = run([ffaudit, "merge", "--records-dir", str(rec_dir),
                         "--out", str(report)])
    return run_seconds, merge_seconds, report


def shard_section(ffaudit: str) -> dict:
    data = {}
    with tempfile.TemporaryDirectory(prefix="bench_audit_shard_") as tmp:
        root = Path(tmp)
        reference = root / "report-single.json"
        data["shard_single_seconds"] = round(
            run([ffaudit, "run", *JOB_FLAGS, "--out", str(reference)]), 3)
        run1, merge1, report1 = sharded_run(ffaudit, root, 1)
        run4, merge4, report4 = sharded_run(ffaudit, root, 4)
        data["shard1_seconds"] = round(run1, 3)
        data["shard4_seconds"] = round(run4, 3)
        data["shard_merge_seconds"] = round(merge1 + merge4, 3)
        ref_bytes = reference.read_bytes()
        data["shard_report_identical"] = int(
            report1.read_bytes() == ref_bytes and report4.read_bytes() == ref_bytes)
    return data


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("bench_output", help="bench_audit_throughput output file, or - for stdin")
    parser.add_argument("json_out", help="baseline JSON to write")
    parser.add_argument("--ffaudit", help="path to the ffaudit binary (enables the shard section)")
    args = parser.parse_args()

    if args.bench_output == "-":
        lines = sys.stdin.readlines()
    else:
        lines = Path(args.bench_output).read_text().splitlines()
    data = collect(lines)

    missing = [k for k in BENCH_REQUIRED_KEYS if k not in data]
    if missing:
        print(f"bench_audit_json: missing BENCH_KV keys: {missing}", file=sys.stderr)
        return 1
    if not data["audit_determinism_ok"]:
        print("bench_audit_json: bench reported non-deterministic reports", file=sys.stderr)
        return 1

    if args.ffaudit:
        data.update(shard_section(args.ffaudit))
        missing = [k for k in SHARD_REQUIRED_KEYS if k not in data]
        if missing:
            print(f"bench_audit_json: missing shard keys: {missing}", file=sys.stderr)
            return 1
        if not data["shard_report_identical"]:
            print("bench_audit_json: sharded merge diverged from single-process report",
                  file=sys.stderr)
            return 1

    Path(args.json_out).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
