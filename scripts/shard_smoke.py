#!/usr/bin/env python3
"""Shard smoke test: plan / run / interrupt / resume / merge, byte-for-byte.

Drives the `ffaudit` CLI as real subprocesses through the full distribution
workflow on a small npbench audit:

1. single-process reference: `ffaudit run` (canonical report + artifacts);
2. `ffaudit plan` with 3 shards;
3. shards 0 and 2 run to completion as separate processes;
4. shard 1 is interrupted mid-run (`--interrupt-after-units`, the runner's
   deterministic stand-in for kill -9: records of the completed chunks, a
   torn final line, no checkpoint for the chunk in flight);
5. merging with the interrupted shard must FAIL (incomplete coverage);
6. shard 1 is re-invoked and resumes from its last checkpoint (the log
   must prove it resumed rather than restarted);
7. `ffaudit merge` over all three record files must produce a report file
   and reproducer artifacts byte-identical to step 1;
8. one byte of a finished shard's record file is flipped on disk; merge
   must refuse with a record-integrity error (exit 6) naming the file and
   line, and `ffaudit fsck` must report the same corruption (exit 6);
9. `ffaudit fsck --repair` truncates the file back to its last verifiable
   prefix, re-running the shard resumes from that prefix, and the final
   merge is again byte-identical to step 1.

Usage:  python3 scripts/shard_smoke.py --ffaudit build/ffaudit
Exits non-zero on the first violated expectation.
"""

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

JOB_FLAGS = [
    "--workload", "gemm",
    "--passes", "table2",
    "--trials", "10",
    "--size-max", "6",
    "--max-transitions", "2000",
]


def fail(message: str) -> None:
    print(f"shard_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run(cmd, expect_rc=0) -> str:
    proc = subprocess.run(cmd, capture_output=True, text=True)
    print(f"$ {' '.join(str(c) for c in cmd)}")
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != expect_rc:
        fail(f"expected exit {expect_rc}, got {proc.returncode}")
    return proc.stdout + proc.stderr


def dir_bytes(path: Path) -> dict:
    return {p.name: p.read_bytes() for p in sorted(path.iterdir())} if path.exists() else {}


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--ffaudit", required=True, help="path to the ffaudit binary")
    args = parser.parse_args()
    ffaudit = args.ffaudit

    with tempfile.TemporaryDirectory(prefix="shard_smoke_") as tmp:
        root = Path(tmp)
        plan_dir, rec_dir = root / "plan", root / "rec"
        ref_report, merged_report = root / "report-single.json", root / "report-merged.json"
        ref_art, merged_art = root / "art-single", root / "art-merged"

        # 1. Single-process reference.
        run([ffaudit, "run", *JOB_FLAGS, "--out", ref_report, "--artifact-dir", ref_art])

        # 2. Plan 3 shards with small chunks so the interruption lands
        # between checkpoints.
        run([ffaudit, "plan", *JOB_FLAGS, "--shards", "3",
             "--checkpoint-interval", "5", "--out-dir", plan_dir])

        # 3. Shards 0 and 2 complete normally (different worker counts on
        # purpose — the contract says they cannot matter).
        run([ffaudit, "run-shard", "--manifest", plan_dir / "shard-0.json",
             "--records-dir", rec_dir, "--threads", "2"])
        run([ffaudit, "run-shard", "--manifest", plan_dir / "shard-2.json",
             "--records-dir", rec_dir, "--threads", "4"])

        # 4. Shard 1 dies mid-run (exit 3 = interrupted, torn record tail).
        run([ffaudit, "run-shard", "--manifest", plan_dir / "shard-1.json",
             "--records-dir", rec_dir, "--interrupt-after-units", "7"], expect_rc=3)

        # 5. Merging an incomplete shard set must be refused (exit 6 =
        # merge/validation failure).
        run([ffaudit, "merge", "--records-dir", rec_dir, "--out", merged_report],
            expect_rc=6)

        # 6. Resume shard 1 from its checkpoint.
        out = run([ffaudit, "run-shard", "--manifest", plan_dir / "shard-1.json",
                   "--records-dir", rec_dir])
        if "resumed" not in out:
            fail("second run-shard invocation did not resume from the checkpoint")

        # 7. Merge and compare byte-for-byte.
        run([ffaudit, "merge", "--records-dir", rec_dir, "--out", merged_report,
             "--artifact-dir", merged_art])
        if merged_report.read_bytes() != ref_report.read_bytes():
            fail("merged report differs from the single-process report")
        ref_artifacts = dir_bytes(ref_art)
        if not ref_artifacts:
            fail("reference run produced no reproducer artifacts — smoke job lost its teeth")
        if dir_bytes(merged_art) != ref_artifacts:
            fail("merged reproducer artifacts differ from the single-process ones")

        # 8. Silent at-rest corruption: flip one byte in the middle of a
        # finished shard's record stream.  The per-line CRC must catch it —
        # merge refuses with exit 6 naming the file and line, and fsck
        # reports the same corruption.
        victim = rec_dir / "records-0.jsonl"
        pristine = victim.read_bytes()
        flipped = bytearray(pristine)
        at = len(flipped) // 2
        while flipped[at] == ord("\n"):  # stay inside a line
            at += 1
        flipped[at] ^= 0x08
        victim.write_bytes(bytes(flipped))

        out = run([ffaudit, "merge", "--records-dir", rec_dir, "--out", merged_report],
                  expect_rc=6)
        if victim.name not in out or "line" not in out:
            fail("merge's integrity refusal does not name the corrupt file and line")
        out = run([ffaudit, "fsck", "--records-dir", rec_dir], expect_rc=6)
        if victim.name not in out or "line" not in out:
            fail("fsck did not name the corrupt file and line")

        # 9. Repair truncates to the last verifiable prefix; the shard
        # resumes from it and the audit is whole again, byte for byte.
        run([ffaudit, "fsck", "--records", victim, "--repair"], expect_rc=6)
        if len(victim.read_bytes()) >= len(pristine):
            fail("fsck --repair did not truncate the corrupt suffix")
        run([ffaudit, "fsck", "--records", victim])  # clean now: exit 0
        out = run([ffaudit, "run-shard", "--manifest", plan_dir / "shard-0.json",
                   "--records-dir", rec_dir])
        if "resumed" not in out:
            fail("repaired shard restarted from scratch instead of resuming")
        if victim.read_bytes() != pristine:
            fail("repair + resume did not reproduce the original record stream bytes")
        final_art = root / "art-final"
        run([ffaudit, "merge", "--records-dir", rec_dir, "--out", merged_report,
             "--artifact-dir", final_art])
        if merged_report.read_bytes() != ref_report.read_bytes():
            fail("post-repair merged report differs from the single-process report")
        if dir_bytes(final_art) != ref_artifacts:
            fail("post-repair reproducer artifacts differ from the single-process ones")

    print("shard_smoke: PASS (interrupted shard resumed; corruption detected, "
          "repaired and resumed; merges byte-identical)")


if __name__ == "__main__":
    main()
