#!/usr/bin/env python3
"""Measure feedback guidance and fold it into a BENCH_feedback.json baseline.

Drives the `ffaudit` CLI as real subprocesses over the tiling audit the
feedback knobs are tuned for (docs/TUNING.md: 30 trials in 3 generations
of 10 at size-max 96) and emits:

* `guided_pairs_hit` / `unguided_pairs_hit` / `pairs_total` — def-use
  pairs covered by the guided (`--feedback`) and unguided (`--coverage`
  only) runs at the same trial budget, and the atlas size;
* `guidance_ratio` and the normalized `*_pairs_per_1k_trials` rates —
  the acceptance bar is guided >= 1.5x unguided, and since coverage is a
  pure function of the job the ratio is exact, so the bar gates CI;
* `corpus_entries` / `corpus_generations` — corpus shape (entries in
  more than one generation prove mutation kept absorbing new coverage);
* `coverage_off_seconds` / `unguided_seconds` / `guided_seconds` and
  `coverage_overhead_ratio` — wall-clock cost of instrumentation
  (informational: subprocess timing is noisy, so nothing gates on it;
  `bench_interp_hotpath` owns the <5% engine-level bar).

Usage:
    python3 scripts/bench_feedback_json.py BENCH_feedback.json --ffaudit build/ffaudit

Exits non-zero when the guided run fails to clear the 1.5x bar or the
corpus never left generation 0, so a baseline without a guidance win
cannot pass CI.
"""

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

GENERATION_SIZE = 10
TRIALS = 30
JOB_FLAGS = [
    "--workload", "gemm",
    "--passes", "tiling",
    "--trials", str(TRIALS),
    "--size-max", "96",
    "--max-transitions", "2000",
]
GUIDANCE_BAR = 1.5


def run(cmd) -> float:
    """Runs a subprocess (raising on failure); returns wall seconds."""
    t0 = time.monotonic()
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return time.monotonic() - t0


def coverage_totals(report_path: Path) -> tuple[int, int]:
    doc = json.loads(report_path.read_text())
    reports = doc["reports"]
    return (sum(r.get("pairs_hit", 0) for r in reports),
            sum(r.get("pairs_total", 0) for r in reports))


def corpus_shape(corpus_path: Path) -> tuple[int, int]:
    trials = []
    for line in corpus_path.read_text().splitlines():
        record = json.loads(line)
        if record.get("type") == "entry":
            trials.append(record["entry"]["trial"])
    return len(trials), len({t // GENERATION_SIZE for t in trials})


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("json_out", help="baseline JSON to write")
    parser.add_argument("--ffaudit", required=True, help="path to the ffaudit binary")
    args = parser.parse_args()
    ffaudit = args.ffaudit

    data = {}
    with tempfile.TemporaryDirectory(prefix="bench_feedback_") as tmp:
        root = Path(tmp)
        plain, unguided, guided = (root / "plain.json", root / "unguided.json",
                                   root / "guided.json")
        corpus = root / "corpus.jsonl"

        data["coverage_off_seconds"] = round(
            run([ffaudit, "run", *JOB_FLAGS, "--out", str(plain)]), 3)
        data["unguided_seconds"] = round(
            run([ffaudit, "run", *JOB_FLAGS, "--coverage", "--out", str(unguided)]), 3)
        data["guided_seconds"] = round(
            run([ffaudit, "run", *JOB_FLAGS, "--feedback",
                 "--generation-size", str(GENERATION_SIZE),
                 "--out", str(guided), "--corpus-out", str(corpus)]), 3)
        if data["coverage_off_seconds"] > 0:
            data["coverage_overhead_ratio"] = round(
                data["unguided_seconds"] / data["coverage_off_seconds"], 3)

        unguided_hit, pairs_total = coverage_totals(unguided)
        guided_hit, guided_total = coverage_totals(guided)
        if pairs_total != guided_total:
            print("bench_feedback_json: atlas size differs between runs "
                  f"({pairs_total} vs {guided_total})", file=sys.stderr)
            return 1
        data["pairs_total"] = pairs_total
        data["unguided_pairs_hit"] = unguided_hit
        data["guided_pairs_hit"] = guided_hit
        data["unguided_pairs_per_1k_trials"] = round(unguided_hit * 1000 / TRIALS, 1)
        data["guided_pairs_per_1k_trials"] = round(guided_hit * 1000 / TRIALS, 1)
        data["guidance_ratio"] = round(guided_hit / max(unguided_hit, 1), 3)
        data["corpus_entries"], data["corpus_generations"] = corpus_shape(corpus)

    if data["guidance_ratio"] < GUIDANCE_BAR:
        print(f"bench_feedback_json: guidance ratio {data['guidance_ratio']} "
              f"below the {GUIDANCE_BAR}x bar "
              f"({data['guided_pairs_hit']} vs {data['unguided_pairs_hit']} pairs)",
              file=sys.stderr)
        return 1
    if data["corpus_generations"] < 2:
        print("bench_feedback_json: corpus never left generation 0 — "
              "mutation is not absorbing new coverage", file=sys.stderr)
        return 1

    Path(args.json_out).write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
