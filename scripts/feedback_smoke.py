#!/usr/bin/env python3
"""Feedback smoke test: guided audits over real ffaudit processes.

End-to-end enforcement of determinism-contract clause 10
(docs/ARCHITECTURE.md "Coverage-guided feedback") plus the guidance win:

1. single-process guided reference: `ffaudit run --feedback --corpus-out`
   at 1 worker (canonical report + corpus file);
2. the same job at 8 workers must reproduce both files byte-for-byte
   (the derivational generation barrier cannot depend on thread count);
3. `ffaudit plan` with 4 shards, shard 2 interrupted mid-run and resumed,
   then `ffaudit merge --corpus-out` must reproduce both files
   byte-for-byte (corpus gaps re-derived from the injected records);
4. the corpus must span more than one generation — i.e. mutated
   descendants of earlier entries themselves earned corpus slots, the
   signature of feedback actually steering (coverage strictly grows
   across generations);
5. a coverage-only (unguided) run of the same budget must hit strictly
   fewer def-use pairs than the guided run;
6. a feedback-off run's report must carry no coverage keys at all
   (conditional wire fields preserve historical bytes).

Usage:  python3 scripts/feedback_smoke.py --ffaudit build/ffaudit
Exits non-zero on the first violated expectation.
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

# The tiling audit of the bench config (docs/TUNING.md): 3 generations of
# 10 trials at a size range wide enough that region classes differ.
GENERATION_SIZE = 10
JOB_FLAGS = [
    "--workload", "gemm",
    "--passes", "tiling",
    "--trials", "30",
    "--size-max", "96",
    "--max-transitions", "2000",
]
GUIDED_FLAGS = [*JOB_FLAGS, "--feedback", "--generation-size", str(GENERATION_SIZE)]


def fail(message: str) -> None:
    print(f"feedback_smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run(cmd, expect_rc=0) -> str:
    proc = subprocess.run(cmd, capture_output=True, text=True)
    print(f"$ {' '.join(str(c) for c in cmd)}")
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != expect_rc:
        fail(f"expected exit {expect_rc}, got {proc.returncode}")
    return proc.stdout + proc.stderr


def pairs_hit(report_path: Path) -> int:
    doc = json.loads(report_path.read_text())
    return sum(r.get("pairs_hit", 0) for r in doc["reports"])


def corpus_trials(corpus_path: Path):
    trials = []
    for line in corpus_path.read_text().splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("type") == "entry":  # skip the header and trailer lines
            trials.append(record["entry"]["trial"])
    return trials


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--ffaudit", required=True, help="path to the ffaudit binary")
    args = parser.parse_args()
    ffaudit = args.ffaudit

    with tempfile.TemporaryDirectory(prefix="feedback_smoke_") as tmp:
        root = Path(tmp)
        ref_report, ref_corpus = root / "report-1t.json", root / "corpus-1t.jsonl"
        t8_report, t8_corpus = root / "report-8t.json", root / "corpus-8t.jsonl"

        # 1. Guided single-process reference at 1 worker.
        run([ffaudit, "run", *GUIDED_FLAGS, "--threads", "1",
             "--out", ref_report, "--corpus-out", ref_corpus])
        guided_pairs = pairs_hit(ref_report)
        if guided_pairs <= 0:
            fail("guided run reports no pairs hit — instrumentation is dead")

        # 2. Thread invariance: 8 workers, same bytes.
        run([ffaudit, "run", *GUIDED_FLAGS, "--threads", "8",
             "--out", t8_report, "--corpus-out", t8_corpus])
        if t8_report.read_bytes() != ref_report.read_bytes():
            fail("guided report differs between 1 and 8 workers")
        if t8_corpus.read_bytes() != ref_corpus.read_bytes():
            fail("corpus differs between 1 and 8 workers")

        # 3. Shard invariance: 4 shards, shard 2 interrupted + resumed,
        # merged report and corpus byte-identical to step 1.
        plan_dir, rec_dir = root / "plan", root / "rec"
        merged_report, merged_corpus = root / "report-merged.json", root / "corpus-merged.jsonl"
        run([ffaudit, "plan", *GUIDED_FLAGS, "--shards", "4",
             "--checkpoint-interval", "3", "--out-dir", plan_dir])
        for shard in (0, 1, 3):
            run([ffaudit, "run-shard", "--manifest", plan_dir / f"shard-{shard}.json",
                 "--records-dir", rec_dir, "--threads", "2"])
        run([ffaudit, "run-shard", "--manifest", plan_dir / "shard-2.json",
             "--records-dir", rec_dir, "--interrupt-after-units", "4"], expect_rc=3)
        out = run([ffaudit, "run-shard", "--manifest", plan_dir / "shard-2.json",
                   "--records-dir", rec_dir])
        if "resumed" not in out:
            fail("interrupted shard restarted from scratch instead of resuming")
        run([ffaudit, "merge", "--records-dir", rec_dir,
             "--out", merged_report, "--corpus-out", merged_corpus])
        if merged_report.read_bytes() != ref_report.read_bytes():
            fail("merged report differs from the single-process report")
        if merged_corpus.read_bytes() != ref_corpus.read_bytes():
            fail("merged corpus differs from the single-process corpus")

        # 4. Feedback actually steered: the corpus spans more than one
        # generation, so coverage kept growing after mutation kicked in.
        trials = corpus_trials(ref_corpus)
        if not trials:
            fail("corpus file holds no entries")
        generations = {t // GENERATION_SIZE for t in trials}
        if len(generations) < 2:
            fail(f"corpus entries all sit in one generation ({sorted(trials)}) — "
                 "coverage never grew under mutation")

        # 5. Guidance win: coverage-only (plain draws) at the same budget
        # must hit strictly fewer pairs.
        unguided_report = root / "report-unguided.json"
        run([ffaudit, "run", *JOB_FLAGS, "--coverage", "--threads", "1",
             "--out", unguided_report])
        unguided_pairs = pairs_hit(unguided_report)
        if guided_pairs <= unguided_pairs:
            fail(f"guided run hit {guided_pairs} pairs vs unguided {unguided_pairs} — "
                 "no guidance win")

        # 6. Feedback off: no coverage keys on the wire.
        plain_report = root / "report-plain.json"
        run([ffaudit, "run", *JOB_FLAGS, "--threads", "1", "--out", plain_report])
        doc = json.loads(plain_report.read_text())
        for r in doc["reports"]:
            for key in ("pairs_total", "pairs_hit", "corpus_size"):
                if key in r:
                    fail(f"feedback-off report leaks coverage key '{key}'")

        print(f"feedback_smoke: PASS (guided {guided_pairs} vs unguided "
              f"{unguided_pairs} pairs; corpus of {len(trials)} entries across "
              f"{len(generations)} generations; 8-thread and 4-shard runs "
              "byte-identical)")


if __name__ == "__main__":
    main()
